"""Tests for the SBML, Manetho, pessimistic and optimistic protocols."""

import pytest

from repro import build_system, crash_at
from repro.protocols.fbl import STABLE_HOST
from repro.protocols.manetho import ManethoLogging
from repro.protocols.sender_based import SenderBasedLogging

from helpers import small_config


def run_system(config):
    system = build_system(config)
    result = system.run()
    return system, result


class TestSenderBased:
    def test_is_fbl_with_f_1_and_acks(self):
        protocol = SenderBasedLogging()
        assert protocol.f == 1
        assert protocol.ack_to_sender

    def test_sender_learns_receipt_orders(self):
        """The defining SBML property: the *sender* stores the receipt
        order of each message it sent (learned via the rsn ack)."""
        config = small_config(n=4, protocol="sender_based", hops=12)
        system, result = run_system(config)
        for node in system.nodes:
            for (sender, ssn) in node.app.delivery_history:
                det_holder = system.nodes[sender].protocol.det_log
                orders = det_holder.for_receiver(node.node_id)
                assert any(
                    d.sender == sender and d.ssn == ssn for d in orders.values()
                ), f"sender {sender} never learned rsn of its message {ssn}"

    def test_recovers_from_single_failure(self):
        config = small_config(
            n=5, protocol="sender_based", hops=20,
            crashes=[crash_at(node=1, time=0.02)],
        )
        system, result = run_system(config)
        assert result.consistent
        assert len(result.recovery_durations()) == 1


class TestManetho:
    def test_requires_n_nodes(self):
        with pytest.raises(ValueError):
            ManethoLogging(n_nodes=0)

    def test_determinants_written_to_stable_storage(self):
        config = small_config(n=4, protocol="manetho", hops=12)
        system, result = run_system(config)
        for node in system.nodes:
            logged = node.storage.log_len(f"determinants:{node.node_id}")
            assert logged == node.app.delivered_count

    def test_stable_host_marks_determinants_stable(self):
        config = small_config(n=4, protocol="manetho", hops=12)
        system, result = run_system(config)
        node = system.nodes[0]
        own = node.protocol.det_log.for_receiver(0)
        for det in own.values():
            assert STABLE_HOST in node.protocol.det_log.logged_at(det)

    def test_writes_are_asynchronous(self):
        """Deliveries must not stall on the determinant log write."""
        config = small_config(n=4, protocol="manetho", hops=12)
        system, result = run_system(config)
        for node in system.nodes:
            stall = node.storage.stats.sync_stall_time.get(node.node_id, 0.0)
            assert stall == 0.0

    def test_recovers_with_all_nodes_crashing_pairwise(self):
        """f = n tolerates concurrent failures of several processes."""
        config = small_config(
            n=4, protocol="manetho", hops=16,
            crashes=[crash_at(node=0, time=0.02), crash_at(node=2, time=0.025)],
        )
        system, result = run_system(config)
        assert result.consistent
        assert len(result.recovery_durations()) == 2


class TestPessimistic:
    def test_delivery_waits_for_stable_write(self):
        """Failure-free cost: every delivery pays a synchronous write."""
        config = small_config(n=4, protocol="pessimistic", recovery="local", hops=12)
        system, result = run_system(config)
        for node in system.nodes:
            if node.app.delivered_count:
                assert result.sync_stall_time(node.node_id) > 0

    def test_log_holds_all_deliveries(self):
        config = small_config(n=4, protocol="pessimistic", recovery="local", hops=12)
        system, result = run_system(config)
        for node in system.nodes:
            assert node.storage.log_len(f"msglog:{node.node_id}") >= node.app.delivered_count

    def test_recovery_is_local(self):
        """No depinfo is gathered: zero recovery messages other than the
        completion announcement."""
        config = small_config(
            n=4, protocol="pessimistic", recovery="local", hops=20,
            crashes=[crash_at(node=1, time=0.05)],
        )
        system, result = run_system(config)
        assert result.consistent
        # only the completion broadcast: n-1 messages
        assert result.recovery_messages() == config.n - 1

    def test_replay_reproduces_pre_crash_deliveries(self):
        config = small_config(
            n=4, protocol="pessimistic", recovery="local", hops=20,
            crashes=[crash_at(node=1, time=0.05)],
        )
        system, result = run_system(config)
        assert result.consistent
        episode = result.episodes[0]
        assert episode.complete


class TestOptimistic:
    def test_deliveries_do_not_stall(self):
        config = small_config(n=4, protocol="optimistic", recovery="optimistic", hops=12)
        system, result = run_system(config)
        for node in system.nodes:
            assert result.sync_stall_time(node.node_id) == 0.0

    def test_dependency_vectors_grow_transitively(self):
        config = small_config(n=4, protocol="optimistic", recovery="optimistic", hops=20)
        system, result = run_system(config)
        touched = [n for n in system.nodes if n.app.delivered_count > 2]
        assert any(len(n.protocol.dep) >= 2 for n in touched)

    def test_recovers_from_single_failure(self):
        config = small_config(
            n=5, protocol="optimistic", recovery="optimistic", hops=20,
            crashes=[crash_at(node=1, time=0.05)],
        )
        system, result = run_system(config)
        assert result.consistent

    def test_orphans_roll_back_when_log_lags(self):
        """With a glacial stable log, a crash loses a delivery suffix and
        dependent processes must roll back as orphans."""
        config = small_config(
            n=4, protocol="optimistic", recovery="optimistic", hops=30,
            crashes=[crash_at(node=1, time=0.05)],
            storage_op_latency=0.5,  # writes lag far behind execution
        )
        system, result = run_system(config)
        assert result.consistent
        assert result.orphan_rollbacks >= 1

    def test_fbl_never_orphans_in_same_scenario(self):
        config = small_config(
            n=4, protocol="fbl", recovery="nonblocking", hops=30,
            crashes=[crash_at(node=1, time=0.05)],
            storage_op_latency=0.5,
        )
        system, result = run_system(config)
        assert result.consistent
        assert result.orphan_rollbacks == 0
