"""Shared builders for the test suite."""

from __future__ import annotations

from typing import List, Optional

from repro import SystemConfig, build_system, run_config
from repro.procs.failure import CrashPlan


def small_config(
    n: int = 6,
    protocol: str = "fbl",
    recovery: str = "nonblocking",
    f: int = 2,
    crashes: Optional[List[CrashPlan]] = None,
    workload: str = "uniform",
    hops: int = 20,
    seed: int = 0,
    **overrides,
) -> SystemConfig:
    """A fast-running config for integration tests.

    Uses a small state size and short detection delay so recovery
    scenarios finish in few simulated seconds and few real milliseconds.
    """
    protocol_params = overrides.pop("protocol_params", None)
    if protocol_params is None:
        protocol_params = {"f": f} if protocol == "fbl" else {}
    workload_params = overrides.pop(
        "workload_params", {"hops": hops, "fanout": 2} if workload == "uniform" else {"hops": hops}
    )
    return SystemConfig(
        n=n,
        seed=seed,
        name=f"test-{protocol}-{recovery}",
        protocol=protocol,
        protocol_params=protocol_params,
        recovery=recovery,
        workload=workload,
        workload_params=workload_params,
        crashes=list(crashes or []),
        detection_delay=overrides.pop("detection_delay", 0.5),
        state_bytes=overrides.pop("state_bytes", 100_000),
        max_events=overrides.pop("max_events", 2_000_000),
        **overrides,
    )


def run_small(**kwargs):
    """Build and run a :func:`small_config` in one call."""
    return run_config(small_config(**kwargs))
