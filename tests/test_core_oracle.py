"""Unit tests for the consistency oracle."""

from repro.core.oracle import ConsistencyOracle, NullOracle, OracleViolation


def test_clean_run_is_consistent():
    oracle = ConsistencyOracle()
    oracle.on_send(0, 0, 1, 0)
    oracle.on_deliver(1, 0, 0, 0, "d1")
    assert oracle.consistent
    oracle.check_safety({0: [], 1: [(0, 0)]})
    assert oracle.consistent


def test_replay_matching_original_is_clean():
    oracle = ConsistencyOracle()
    oracle.on_send(0, 0, 1, 0)
    oracle.on_deliver(1, 0, 0, 0, "d1")
    # replay: identical send and delivery
    oracle.on_send(0, 0, 1, 0)
    oracle.on_deliver(1, 0, 0, 0, "d1")
    assert oracle.consistent


def test_replay_order_divergence_detected():
    oracle = ConsistencyOracle()
    oracle.on_deliver(1, 0, 0, 0, "d1")
    oracle.on_deliver(1, 0, 2, 5, "d1")  # same rsn, different message
    assert not oracle.consistent
    assert oracle.violations[0].kind == "replay-order"


def test_replay_digest_divergence_detected():
    oracle = ConsistencyOracle()
    oracle.on_deliver(1, 0, 0, 0, "d1")
    oracle.on_deliver(1, 0, 0, 0, "DIFFERENT")
    assert not oracle.consistent
    assert oracle.violations[0].kind == "replay-digest"


def test_send_divergence_detected():
    oracle = ConsistencyOracle()
    oracle.on_send(0, 3, 1, 5)
    oracle.on_send(0, 3, 1, 9)  # regenerated at a different point
    assert not oracle.consistent
    assert oracle.violations[0].kind == "send-divergence"


def test_orphan_detected():
    """A surviving delivery depending on a rolled-back delivery."""
    oracle = ConsistencyOracle()
    # p delivers m at rsn 0, then sends to q, which delivers it
    oracle.on_deliver(0, 0, 9, 0, "p-digest")
    oracle.on_send(0, 0, 1, 1)  # p's send happened after 1 delivery
    oracle.on_deliver(1, 0, 0, 0, "q-digest")
    # p's delivery was rolled back (final history empty), q's survived
    oracle.check_safety({0: [], 1: [(0, 0)], 9: []})
    assert not oracle.consistent
    assert any(v.kind == "orphan" for v in oracle.violations)


def test_rollback_forgets_invisible_suffix():
    """Rolled-back deliveries do not trigger false replay divergence."""
    oracle = ConsistencyOracle()
    oracle.on_deliver(1, 0, 0, 0, "a")
    oracle.on_deliver(1, 1, 2, 0, "b")  # this one will be rolled back
    oracle.on_rollback(1, 1)
    oracle.on_deliver(1, 1, 3, 0, "c")  # fresh execution takes rsn 1
    assert oracle.consistent


def test_rollback_archives_sends():
    oracle = ConsistencyOracle()
    oracle.on_send(0, 5, 1, 10)  # sent after 10 deliveries
    oracle.on_rollback(0, 4)  # rolled back to 4 deliveries
    oracle.on_send(0, 5, 1, 6)  # ssn reused by the new execution
    assert oracle.consistent


def test_orphan_still_detected_after_rollback_archiving():
    """Archived events keep their causal edges for the safety check."""
    oracle = ConsistencyOracle()
    oracle.on_deliver(0, 0, 9, 0, "p")
    oracle.on_send(0, 0, 1, 1)
    oracle.on_deliver(1, 0, 0, 0, "q")
    oracle.on_rollback(0, 0)  # p rolled back to zero deliveries
    oracle.check_safety({0: [], 1: [(0, 0)], 9: []})
    assert any(v.kind == "orphan" for v in oracle.violations)


def test_history_divergence_detected():
    oracle = ConsistencyOracle()
    oracle.on_deliver(1, 0, 0, 0, "a")
    oracle.check_safety({1: [(9, 9)]})
    assert any(v.kind == "history-divergence" for v in oracle.violations)


def test_violation_str():
    violation = OracleViolation(kind="orphan", node=3, detail="boom")
    assert "orphan" in str(violation)
    assert "3" in str(violation)


def test_deliveries_recorded_counts_unique():
    oracle = ConsistencyOracle()
    oracle.on_deliver(1, 0, 0, 0, "a")
    oracle.on_deliver(1, 0, 0, 0, "a")
    oracle.on_deliver(1, 1, 0, 1, "b")
    assert oracle.deliveries_recorded() == 2


def test_null_oracle_observes_nothing():
    oracle = NullOracle()
    oracle.on_send(0, 0, 1, 0)
    oracle.on_deliver(1, 0, 0, 99, "x")
    oracle.on_deliver(1, 0, 5, 5, "y")  # would be a violation normally
    oracle.on_rollback(1, 0)
    oracle.check_safety({1: [(9, 9)]})
    assert oracle.consistent
    assert oracle.deliveries_recorded() == 0
