"""Observability must be free: no simulated-time or RNG perturbation.

Spans, the metrics registry, and the kernel profiler are host-side
bookkeeping.  Turning all of them on must reproduce the seed goldens
byte-identically -- same event count, same timestamps, same digests.
Counters-only traces (``keep_trace_events=False``) drop the event list
but must keep feeding counters, which is what sweeps and benchmarks
read.
"""

import pytest

from repro import build_system
from repro.experiments import failure_during_recovery, single_failure

from helpers import small_config
from test_seed_regression import BUILDERS, GOLDEN, snapshot


@pytest.mark.parametrize("key", sorted(BUILDERS))
def test_goldens_identical_with_all_observability_on(key):
    scenario = {
        "e1-nonblocking": lambda: single_failure(
            recovery="nonblocking", spans=True, profile=True),
        "e1-blocking": lambda: single_failure(
            recovery="blocking", spans=True, profile=True),
        "e2-nonblocking": lambda: failure_during_recovery(
            recovery="nonblocking", spans=True, profile=True),
        "e2-blocking": lambda: failure_during_recovery(
            recovery="blocking", spans=True, profile=True),
    }[key]
    assert snapshot(scenario()) == GOLDEN[key]


def test_spans_add_no_simulated_events():
    plain = single_failure(recovery="nonblocking").run()
    observed = single_failure(recovery="nonblocking", spans=True, profile=True).run()
    assert observed.extra["events_processed"] == plain.extra["events_processed"]
    assert observed.end_time == plain.end_time
    assert observed.digests == plain.digests


def test_counters_only_trace_still_populates_counters():
    config = small_config(n=4, hops=15, keep_trace_events=False)
    system = build_system(config)
    result = system.run()
    assert result.consistent
    # the event list is dropped...
    assert system.trace.events == []
    # ...but counters and the registry keep counting
    counters = result.extra["trace_counters"]
    assert counters.get("net.send", 0) > 0
    assert counters.get("app.deliver", 0) > 0
    assert result.extra["metrics"]["net.messages_sent"]["value"] > 0


def test_counters_only_matches_full_trace_counters():
    full = build_system(small_config(n=4, hops=15)).run()
    lean = build_system(small_config(n=4, hops=15, keep_trace_events=False)).run()
    assert lean.extra["trace_counters"] == full.extra["trace_counters"]
    assert lean.extra["events_processed"] == full.extra["events_processed"]


def test_cli_sweep_uses_counters_only_traces(capsys):
    """The sweep path drops event lists but its numbers must not change."""
    from repro.cli import main

    code = main([
        "sweep", "--knob", "n", "--values", "4,5",
        "--hops", "10", "--detection-delay", "0.5",
        "--state-bytes", "100000", "--crash", "1@0.03",
    ])
    out = capsys.readouterr().out
    assert code == 0
    # one row per value with a real recovery duration and progress
    assert "n=4" not in out  # config names don't leak into the table
    lines = [l for l in out.splitlines() if l and l[0].isdigit()]
    assert len(lines) == 2


def test_profiler_snapshot_rides_along_without_changing_results():
    plain = single_failure(recovery="nonblocking").run()
    profiled = single_failure(recovery="nonblocking", profile=True).run()
    assert "profile" not in plain.extra
    snap = profiled.extra["profile"]
    assert snap["events_fired"] == plain.extra["events_processed"]
    assert snapshot_keys_match(plain, profiled)


def snapshot_keys_match(a, b) -> bool:
    return (
        a.end_time == b.end_time
        and a.digests == b.digests
        and a.extra["trace_counters"] == b.extra["trace_counters"]
    )
