"""Tests for causal spans and the recovery critical-path extractor."""

import pytest

from repro import build_system, crash_at
from repro.experiments import single_failure
from repro.sim.spans import (
    PHASE_COMPONENT,
    SpanTracker,
    children_of,
    recovery_critical_paths,
    spans_from_trace,
)
from repro.sim.trace import TraceRecorder

from helpers import small_config


# ----------------------------------------------------------------------
# SpanTracker mechanics
# ----------------------------------------------------------------------
def test_disabled_tracker_records_nothing():
    trace = TraceRecorder()
    assert not trace.spans.enabled
    sid = trace.spans.begin("x", 0, 1.0)
    assert sid is None
    trace.spans.end(sid, 2.0)  # must be a safe no-op
    assert trace.events == []
    assert trace.spans.open_count() == 0


def test_begin_end_roundtrip():
    trace = TraceRecorder()
    trace.spans.enable()
    sid = trace.spans.begin("recovery.detect", 3, 1.0, crash_count=1)
    assert sid is not None
    assert trace.spans.open_count() == 1
    trace.spans.end(sid, 2.5, detected=True)
    assert trace.spans.open_count() == 0
    spans = spans_from_trace(trace)
    assert len(spans) == 1
    span = spans[0]
    assert span.kind == "recovery.detect"
    assert span.node == 3
    assert span.start == 1.0 and span.end == 2.5
    assert span.closed and span.duration() == 1.5
    assert span.attrs == {"crash_count": 1, "detected": True}


def test_span_ids_unique_and_parent_links_surface():
    trace = TraceRecorder()
    trace.spans.enable()
    parent = trace.spans.begin("recovery.episode", 1, 0.0)
    child_a = trace.spans.begin("recovery.detect", 1, 0.0, parent=parent)
    child_b = trace.spans.begin("recovery.restore", 1, 1.0, parent=parent)
    linked = trace.spans.begin("recovery.episode", 1, 2.0, links=(parent,))
    assert len({parent, child_a, child_b, linked}) == 4
    for sid in (child_b, child_a, linked, parent):
        trace.spans.end(sid, 3.0)
    spans = {s.span_id: s for s in spans_from_trace(trace)}
    assert spans[child_a].parent == parent
    assert spans[child_b].parent == parent
    assert spans[linked].links == (parent,)
    tree = children_of(list(spans.values()))
    assert [s.span_id for s in tree[parent]] == [child_a, child_b]


def test_unclosed_span_survives_extraction_as_open():
    trace = TraceRecorder()
    trace.spans.enable()
    sid = trace.spans.begin("node.blocked", 2, 1.0)
    assert trace.spans.open_count() == 1
    spans = spans_from_trace(trace)
    assert len(spans) == 1
    assert not spans[0].closed
    assert spans[0].end is None
    assert spans[0].duration(horizon=4.0) == 3.0
    # unused: silence the linter about the deliberate leak
    assert sid is not None


def test_end_unknown_span_is_noop():
    trace = TraceRecorder()
    trace.spans.enable()
    trace.spans.end(999, 1.0)
    assert trace.events == []


def test_tracker_is_attached_to_every_recorder():
    assert isinstance(TraceRecorder().spans, SpanTracker)


# ----------------------------------------------------------------------
# end-to-end spans from real runs
# ----------------------------------------------------------------------
def test_single_failure_emits_the_full_phase_ladder():
    system = single_failure(recovery="nonblocking", spans=True)
    result = system.run()
    assert result.consistent
    spans = spans_from_trace(system.trace)
    kinds = sorted({s.kind for s in spans})
    for kind in ("recovery.episode", "recovery.detect", "recovery.restore",
                 "recovery.gather", "recovery.gather_round",
                 "recovery.replay", "storage.read", "node.checkpoint"):
        assert kind in kinds, f"missing span kind {kind}"
    # every span closed: no leaks at quiescence
    assert system.trace.spans.open_count() == 0
    episode = next(s for s in spans if s.kind == "recovery.episode")
    phases = [s for s in spans if s.parent == episode.span_id]
    assert [p.kind for p in phases] == [
        "recovery.detect", "recovery.restore", "recovery.gather",
        "recovery.gather_round", "recovery.replay",
    ]


def test_blocking_recovery_emits_block_spans():
    config = small_config(
        n=4, recovery="blocking", hops=15,
        crashes=[crash_at(node=2, time=0.03)], spans=True,
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    blocked = [s for s in spans_from_trace(system.trace) if s.kind == "node.blocked"]
    assert blocked, "blocking recovery produced no node.blocked spans"
    assert all(s.closed for s in blocked)
    # block spans belong to live nodes, never the victim
    assert all(s.node != 2 for s in blocked)


def test_crash_mid_recovery_links_superseding_episode():
    # the same victim crashes again while restoring (detection ends at
    # 0.53, restore runs to ~0.65): the second crash supersedes episode 1
    config = small_config(
        n=4, recovery="nonblocking", hops=15,
        crashes=[crash_at(node=2, time=0.03), crash_at(node=2, time=0.6)],
        spans=True,
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    spans = spans_from_trace(system.trace)
    episodes = [s for s in spans if s.kind == "recovery.episode"]
    aborted = [s for s in episodes if s.attrs.get("aborted")]
    linked = [s for s in episodes if s.links]
    assert aborted, "the superseded episode must be marked aborted"
    assert linked, "the superseding episode must link its predecessor"
    assert linked[0].links[0] == aborted[0].span_id


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
def test_critical_path_sums_to_episode_duration():
    system = single_failure(recovery="nonblocking", spans=True)
    result = system.run()
    paths = recovery_critical_paths(system.trace)
    assert len(paths) == 1
    path = paths[0]
    episode = result.episodes[0]
    assert path.node == episode.node
    assert path.total == pytest.approx(episode.total_duration, abs=1e-12)
    # segments tile [crash, complete] with no gaps or overlap
    assert path.segments[0].start == path.start
    assert path.segments[-1].end == path.end
    for a, b in zip(path.segments, path.segments[1:]):
        assert a.end == b.start
    components = path.components()
    assert sum(components.values()) == pytest.approx(path.total, abs=1e-12)
    # E1's recovery is detection-bound, storage second (the paper's point)
    assert path.dominant() == "detection"
    assert components["storage"] > components["control"]


def test_critical_path_node_filter_and_empty_cases():
    system = single_failure(recovery="nonblocking", spans=True)
    system.run()
    assert recovery_critical_paths(system.trace, node=0) == []
    # no spans recorded -> no paths, not an error
    plain = single_failure(recovery="nonblocking")
    plain.run()
    assert recovery_critical_paths(plain.trace) == []


def test_phase_component_map_covers_every_phase_kind():
    assert set(PHASE_COMPONENT) == {
        "recovery.detect", "recovery.restore",
        "recovery.gather", "recovery.replay",
    }
