"""Unit tests for failure detection and injection."""

import pytest

from repro.procs.failure import (
    CrashPlan,
    FailureDetector,
    FailureInjector,
    LinkFaultPlan,
    PartitionPlan,
    StorageFaultPlan,
    crash_at,
    crash_on,
    link_faults_at,
    partition_at,
    storage_outage_at,
)
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


class TestFailureDetector:
    def test_down_announced_after_delay(self):
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=3.0)
        detector.register_node(1)
        events = []
        detector.add_listener(lambda n, s: events.append((sim.now, n, s)))
        detector.notify_crash(1)
        sim.run()
        assert events == [(3.0, 1, "down")]
        assert detector.is_suspected(1)

    def test_up_clears_suspicion(self):
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=1.0)
        detector.register_node(1)
        detector.notify_crash(1)
        sim.run()
        detector.notify_up(1)
        sim.run()
        assert not detector.is_suspected(1)

    def test_fast_recovery_supersedes_pending_down(self):
        """A voluntary rollback completing before detection never shows
        up as a suspicion."""
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=3.0)
        detector.register_node(1)
        events = []
        detector.add_listener(lambda n, s: events.append((n, s)))
        detector.notify_crash(1)
        sim.schedule(0.5, detector.notify_up, 1)
        sim.run()
        assert ("1", "down") not in events and (1, "down") not in events
        assert not detector.is_suspected(1)

    def test_live_and_suspected_views(self):
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=0.1)
        for node in range(3):
            detector.register_node(node)
        detector.notify_crash(2)
        sim.run()
        assert detector.live_view() == {0, 1}
        assert detector.suspected_view() == {2}

    def test_recrash_during_recovery_keeps_suspicion(self):
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=1.0)
        detector.register_node(1)
        detector.notify_crash(1)
        sim.run()
        # second crash before any recovery: still suspected afterwards
        detector.notify_crash(1)
        sim.run()
        assert detector.is_suspected(1)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            FailureDetector(Simulator(), detection_delay=-1)

    def test_crash_up_crash_announces_only_final_state(self):
        """crash -> up -> crash inside one detection window: the stale
        pending announcements are superseded; only the final 'down' fires."""
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=3.0, up_delay=1.0)
        detector.register_node(1)
        events = []
        detector.add_listener(lambda n, s: events.append((sim.now, n, s)))
        detector.notify_crash(1)  # 'down' pending for t=3.0
        sim.schedule(0.5, detector.notify_up, 1)  # 'up' pending for t=1.5
        sim.schedule(1.0, detector.notify_crash, 1)  # supersedes both
        sim.run()
        assert events == [(pytest.approx(4.0), 1, "down")]
        assert detector.is_suspected(1)

    def test_crash_up_crash_with_slow_up_announcement(self):
        """Same race, but the 'up' is already pending when the second
        crash arrives: the second crash must supersede it."""
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=1.0, up_delay=0.5)
        detector.register_node(1)
        events = []
        detector.add_listener(lambda n, s: events.append((sim.now, n, s)))
        detector.notify_crash(1)  # 'down' pending for t=1.0
        sim.schedule(0.1, detector.notify_up, 1)  # 'up' pending for t=0.6
        sim.schedule(0.3, detector.notify_crash, 1)  # supersedes both
        sim.run()
        assert events == [(pytest.approx(1.3), 1, "down")]
        assert detector.is_suspected(1)

    def test_up_crash_up_announces_only_up(self):
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=2.0, up_delay=1.0)
        detector.register_node(1)
        detector.notify_crash(1)
        sim.run()
        assert detector.is_suspected(1)
        events = []
        detector.add_listener(lambda n, s: events.append((sim.now, n, s)))
        base = sim.now
        detector.notify_up(1)  # pending for base+1.0
        sim.schedule(0.2, detector.notify_crash, 1)  # pending for base+2.2
        sim.schedule(0.4, detector.notify_up, 1)  # pending for base+1.4
        sim.run()
        assert events == [(pytest.approx(base + 1.4), 1, "up")]
        assert not detector.is_suspected(1)


class TestCrashPlans:
    def test_crash_at_validates(self):
        with pytest.raises(ValueError):
            crash_at(0, -1.0)
        assert crash_at(0, 5.0).is_timed()

    def test_crash_on_validates(self):
        with pytest.raises(ValueError):
            crash_on(0, "x", "y", delay=-1)
        with pytest.raises(ValueError):
            crash_on(0, "x", "y", occurrence=0)

    def test_match_details_filters(self):
        from repro.sim.trace import TraceEvent

        plan = crash_on(0, "net", "deliver", match_details={"mtype": "req"})
        hit = TraceEvent(0.0, "net", 0, "deliver", {"mtype": "req"})
        miss = TraceEvent(0.0, "net", 0, "deliver", {"mtype": "other"})
        assert plan.matches(hit)
        assert not plan.matches(miss)


class TestFailureInjector:
    def make(self, plans):
        sim = Simulator()
        trace = TraceRecorder()
        crashed = []
        injector = FailureInjector(sim, trace, crashed.append, plans=plans)
        injector.arm()
        return sim, trace, crashed, injector

    def test_timed_crash_fires(self):
        sim, trace, crashed, injector = self.make([crash_at(2, 1.5)])
        sim.run()
        assert crashed == [2]
        assert sim.now == 1.5

    def test_triggered_crash_fires_on_event(self):
        sim, trace, crashed, injector = self.make(
            [crash_on(1, "recovery", "start", match_node=1)]
        )
        sim.schedule(1.0, trace.record, 1.0, "recovery", 1, "start")
        sim.run()
        assert crashed == [1]

    def test_trigger_respects_node_filter(self):
        sim, trace, crashed, injector = self.make(
            [crash_on(1, "recovery", "start", match_node=1)]
        )
        sim.schedule(1.0, trace.record, 1.0, "recovery", 2, "start")
        sim.run()
        assert crashed == []

    def test_trigger_fires_once(self):
        sim, trace, crashed, injector = self.make([crash_on(1, "x", "y")])
        sim.schedule(1.0, trace.record, 1.0, "x", 0, "y")
        sim.schedule(2.0, trace.record, 2.0, "x", 0, "y")
        sim.run()
        assert crashed == [1]

    def test_occurrence_counts(self):
        sim, trace, crashed, injector = self.make(
            [crash_on(1, "x", "y", occurrence=3)]
        )
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, trace.record, t, "x", 0, "y")
        sim.run()
        assert crashed == [1]
        fired_at = injector.crashes_fired[0][0]
        assert fired_at == pytest.approx(3.0)

    def test_delay_after_trigger(self):
        sim, trace, crashed, injector = self.make([crash_on(1, "x", "y", delay=0.5)])
        sim.schedule(1.0, trace.record, 1.0, "x", 0, "y")
        sim.run()
        assert injector.crashes_fired[0][0] == pytest.approx(1.5)

    def test_immediate_fires_synchronously(self):
        sim = Simulator()
        trace = TraceRecorder()
        order = []
        injector = FailureInjector(
            sim, trace, lambda n: order.append(("crash", n)),
            plans=[crash_on(1, "x", "y", immediate=True)],
        )
        injector.arm()

        def traced_event():
            trace.record(sim.now, "x", 0, "y")
            order.append(("handler", None))  # runs after the crash

        sim.schedule(1.0, traced_event)
        sim.run()
        assert order[0] == ("crash", 1)
        assert order[1] == ("handler", None)

    def test_add_plan_after_arm(self):
        sim, trace, crashed, injector = self.make([])
        injector.add(crash_at(4, 2.0))
        sim.run()
        assert crashed == [4]


class TestPlanValidation:
    def test_immediate_with_delay_rejected_at_construction(self):
        with pytest.raises(ValueError):
            CrashPlan(node=1, category="x", action="y", immediate=True, delay=0.5)
        with pytest.raises(ValueError):
            crash_on(1, "x", "y", immediate=True, delay=0.5)
        # immediate with zero delay stays valid
        assert crash_on(1, "x", "y", immediate=True).immediate

    def test_crash_plan_needs_node(self):
        with pytest.raises(ValueError):
            CrashPlan(at_time=1.0)

    def test_link_plan_needs_both_endpoints_or_neither(self):
        with pytest.raises(ValueError):
            LinkFaultPlan(at_time=0.0, src=1, loss_prob=0.5)
        with pytest.raises(ValueError):
            link_faults_at(0.0, loss_prob=0.5, duration=0.0)
        assert link_faults_at(0.0, loss_prob=0.5, src=0, dst=1).src == 0

    def test_partition_plan_needs_two_groups(self):
        with pytest.raises(ValueError):
            PartitionPlan(at_time=0.0, groups=[{0, 1}])
        assert len(partition_at([{0}, {1}], 1.0).groups) == 2

    def test_storage_plan_needs_heal_or_probability(self):
        with pytest.raises(ValueError):
            StorageFaultPlan(at_time=0.0, node=1)  # permanent full outage
        with pytest.raises(ValueError):
            StorageFaultPlan(at_time=0.0, node=1, fail_prob=1.0)
        assert storage_outage_at(1, 0.0, 0.5).duration == 0.5


class TestUnifiedPlanner:
    """Link / partition / storage plans through the FailureInjector."""

    def make_net(self):
        from repro.net.latency import ConstantLatency
        from repro.net.network import Network
        from repro.net.topology import full_mesh
        from repro.sim.rng import RngRegistry

        sim = Simulator()
        trace = TraceRecorder()
        net = Network(
            sim, full_mesh(3), latency=ConstantLatency(0.001),
            rngs=RngRegistry(0), trace=trace,
        )
        return sim, trace, net

    def test_link_fault_plan_fires_and_reverts(self):
        sim, trace, net = self.make_net()
        injector = FailureInjector(
            sim, trace, lambda n: None,
            plans=[link_faults_at(1.0, loss_prob=1.0, duration=2.0)],
            network=net,
        )
        injector.arm()
        got = []
        net.register(1, got.append)
        sim.schedule_at(0.5, lambda: net.send(_msg()))  # before: delivered
        sim.schedule_at(1.5, lambda: net.send(_msg()))  # during: lost
        sim.schedule_at(3.5, lambda: net.send(_msg()))  # after revert: delivered
        sim.run()
        assert len(got) == 2
        assert net.stats.drops_by_cause == {"loss": 1}
        assert trace.count("inject", "link_faults") == 1
        assert trace.count("inject", "link_faults_reverted") == 1

    def test_partition_plan_cuts_and_heals_with_trace(self):
        sim, trace, net = self.make_net()
        injector = FailureInjector(
            sim, trace, lambda n: None,
            plans=[partition_at([{0}, {1, 2}], 1.0, duration=1.0)],
            network=net,
        )
        injector.arm()
        got = []
        net.register(1, got.append)
        sim.schedule_at(1.5, lambda: net.send(_msg()))  # severed
        sim.schedule_at(2.5, lambda: net.send(_msg()))  # healed
        sim.run()
        assert len(got) == 1
        assert net.stats.drops_by_cause == {"partition": 1}
        assert trace.count("inject", "partition") == 1
        assert trace.count("inject", "partition_healed") == 1

    def test_storage_plan_opens_outage_window(self):
        from repro.storage.stable import StableStorage, StorageRetryPolicy

        sim = Simulator()
        trace = TraceRecorder()
        storage = StableStorage(sim, owner=0)
        injector = FailureInjector(
            sim, trace, lambda n: None,
            plans=[storage_outage_at(0, 1.0, 0.5)],
            storages={0: storage},
        )
        injector.arm()
        finishes = []
        sim.schedule_at(
            1.1, lambda: storage.write("a", 1, 1000,
                                       on_done=lambda: finishes.append(sim.now))
        )
        sim.run()
        assert storage.faults is not None
        assert storage.stats.faults_injected > 0
        assert finishes and finishes[0] > 1.5  # succeeded after the heal

    def test_trace_triggered_partition(self):
        sim, trace, net = self.make_net()
        plan = PartitionPlan(
            category="recovery", action="start", groups=[{0}, {1, 2}],
        )
        injector = FailureInjector(
            sim, trace, lambda n: None, plans=[plan], network=net
        )
        injector.arm()
        sim.schedule_at(2.0, lambda: trace.record(sim.now, "recovery", 0, "start"))
        sim.run()
        assert net.faults is not None
        assert net.faults.severed(0, 1, sim.now)

    def test_link_plans_need_network(self):
        sim = Simulator()
        trace = TraceRecorder()
        injector = FailureInjector(
            sim, trace, lambda n: None,
            plans=[link_faults_at(0.0, loss_prob=0.5)],
        )
        injector.arm()
        with pytest.raises(RuntimeError):
            sim.run()


def _msg():
    from repro.net.network import Message, MessageKind

    return Message(src=0, dst=1, kind=MessageKind.APPLICATION, mtype="app")
