"""Unit tests for failure detection and injection."""

import pytest

from repro.procs.failure import (
    CrashPlan,
    FailureDetector,
    FailureInjector,
    crash_at,
    crash_on,
)
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


class TestFailureDetector:
    def test_down_announced_after_delay(self):
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=3.0)
        detector.register_node(1)
        events = []
        detector.add_listener(lambda n, s: events.append((sim.now, n, s)))
        detector.notify_crash(1)
        sim.run()
        assert events == [(3.0, 1, "down")]
        assert detector.is_suspected(1)

    def test_up_clears_suspicion(self):
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=1.0)
        detector.register_node(1)
        detector.notify_crash(1)
        sim.run()
        detector.notify_up(1)
        sim.run()
        assert not detector.is_suspected(1)

    def test_fast_recovery_supersedes_pending_down(self):
        """A voluntary rollback completing before detection never shows
        up as a suspicion."""
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=3.0)
        detector.register_node(1)
        events = []
        detector.add_listener(lambda n, s: events.append((n, s)))
        detector.notify_crash(1)
        sim.schedule(0.5, detector.notify_up, 1)
        sim.run()
        assert ("1", "down") not in events and (1, "down") not in events
        assert not detector.is_suspected(1)

    def test_live_and_suspected_views(self):
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=0.1)
        for node in range(3):
            detector.register_node(node)
        detector.notify_crash(2)
        sim.run()
        assert detector.live_view() == {0, 1}
        assert detector.suspected_view() == {2}

    def test_recrash_during_recovery_keeps_suspicion(self):
        sim = Simulator()
        detector = FailureDetector(sim, detection_delay=1.0)
        detector.register_node(1)
        detector.notify_crash(1)
        sim.run()
        # second crash before any recovery: still suspected afterwards
        detector.notify_crash(1)
        sim.run()
        assert detector.is_suspected(1)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            FailureDetector(Simulator(), detection_delay=-1)


class TestCrashPlans:
    def test_crash_at_validates(self):
        with pytest.raises(ValueError):
            crash_at(0, -1.0)
        assert crash_at(0, 5.0).is_timed()

    def test_crash_on_validates(self):
        with pytest.raises(ValueError):
            crash_on(0, "x", "y", delay=-1)
        with pytest.raises(ValueError):
            crash_on(0, "x", "y", occurrence=0)

    def test_match_details_filters(self):
        from repro.sim.trace import TraceEvent

        plan = crash_on(0, "net", "deliver", match_details={"mtype": "req"})
        hit = TraceEvent(0.0, "net", 0, "deliver", {"mtype": "req"})
        miss = TraceEvent(0.0, "net", 0, "deliver", {"mtype": "other"})
        assert plan.matches(hit)
        assert not plan.matches(miss)


class TestFailureInjector:
    def make(self, plans):
        sim = Simulator()
        trace = TraceRecorder()
        crashed = []
        injector = FailureInjector(sim, trace, crashed.append, plans=plans)
        injector.arm()
        return sim, trace, crashed, injector

    def test_timed_crash_fires(self):
        sim, trace, crashed, injector = self.make([crash_at(2, 1.5)])
        sim.run()
        assert crashed == [2]
        assert sim.now == 1.5

    def test_triggered_crash_fires_on_event(self):
        sim, trace, crashed, injector = self.make(
            [crash_on(1, "recovery", "start", match_node=1)]
        )
        sim.schedule(1.0, trace.record, 1.0, "recovery", 1, "start")
        sim.run()
        assert crashed == [1]

    def test_trigger_respects_node_filter(self):
        sim, trace, crashed, injector = self.make(
            [crash_on(1, "recovery", "start", match_node=1)]
        )
        sim.schedule(1.0, trace.record, 1.0, "recovery", 2, "start")
        sim.run()
        assert crashed == []

    def test_trigger_fires_once(self):
        sim, trace, crashed, injector = self.make([crash_on(1, "x", "y")])
        sim.schedule(1.0, trace.record, 1.0, "x", 0, "y")
        sim.schedule(2.0, trace.record, 2.0, "x", 0, "y")
        sim.run()
        assert crashed == [1]

    def test_occurrence_counts(self):
        sim, trace, crashed, injector = self.make(
            [crash_on(1, "x", "y", occurrence=3)]
        )
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, trace.record, t, "x", 0, "y")
        sim.run()
        assert crashed == [1]
        fired_at = injector.crashes_fired[0][0]
        assert fired_at == pytest.approx(3.0)

    def test_delay_after_trigger(self):
        sim, trace, crashed, injector = self.make([crash_on(1, "x", "y", delay=0.5)])
        sim.schedule(1.0, trace.record, 1.0, "x", 0, "y")
        sim.run()
        assert injector.crashes_fired[0][0] == pytest.approx(1.5)

    def test_immediate_fires_synchronously(self):
        sim = Simulator()
        trace = TraceRecorder()
        order = []
        injector = FailureInjector(
            sim, trace, lambda n: order.append(("crash", n)),
            plans=[crash_on(1, "x", "y", immediate=True)],
        )
        injector.arm()

        def traced_event():
            trace.record(sim.now, "x", 0, "y")
            order.append(("handler", None))  # runs after the crash

        sim.schedule(1.0, traced_event)
        sim.run()
        assert order[0] == ("crash", 1)
        assert order[1] == ("handler", None)

    def test_add_plan_after_arm(self):
        sim, trace, crashed, injector = self.make([])
        injector.add(crash_at(4, 2.0))
        sim.run()
        assert crashed == [4]
