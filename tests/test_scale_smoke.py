"""Scale smoke tests: the machinery must hold up well past the paper's
eight workstations."""

import pytest

from repro import build_system, crash_at

from helpers import small_config


@pytest.mark.parametrize("n", [32, 64])
def test_large_system_failure_free(n):
    system = build_system(small_config(
        n=n, f=2, hops=15,
        workload_params={"hops": 15, "fanout": 1},
    ))
    result = system.run()
    assert result.consistent
    assert result.final_progress > 0


def test_large_system_recovers_from_failure():
    system = build_system(small_config(
        n=48, f=2, hops=20,
        workload_params={"hops": 20, "fanout": 1},
        crashes=[crash_at(node=17, time=0.03)],
    ))
    result = system.run()
    assert result.consistent
    assert len(result.recovery_durations()) == 1
    assert result.total_blocked_time == 0.0


def test_large_system_two_failures_blocking():
    system = build_system(small_config(
        n=32, f=2, recovery="blocking", hops=20,
        workload_params={"hops": 20, "fanout": 1},
        crashes=[crash_at(node=5, time=0.03), crash_at(node=20, time=0.04)],
    ))
    result = system.run()
    assert result.consistent
    assert len(result.recovery_durations()) == 2


def test_message_counts_scale_linearly():
    """Recovery message counts follow the analytic model at scale."""
    from repro.analysis.model import nonblocking_recovery_messages

    for n in (16, 32):
        system = build_system(small_config(
            n=n, f=2, hops=15,
            workload_params={"hops": 15, "fanout": 1},
            crashes=[crash_at(node=3, time=0.03)],
        ))
        result = system.run()
        assert result.recovery_messages() == nonblocking_recovery_messages(n)
