"""Tests for the named-instrument metrics registry."""

import pytest

from repro.core.metrics_registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _percentile,
)
from repro.experiments import single_failure


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
def test_counter_increments_and_rejects_negative():
    c = Counter("net.messages_sent")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 5


def test_gauge_tracks_high_water():
    g = Gauge("sim.events_processed")
    g.set(10)
    g.add(-3)
    assert g.value == 7
    assert g.high_water == 10
    g.set(50)
    assert g.high_water == 50


def test_histogram_percentiles_nearest_rank():
    h = Histogram("storage.op_latency")
    for v in [5, 1, 4, 2, 3]:
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == 15
    assert snap["mean"] == 3
    assert snap["p50"] == 3
    assert snap["p95"] == 5
    assert snap["max"] == 5


def test_empty_histogram_snapshot_is_zeros():
    snap = Histogram("storage.op_latency").snapshot()
    assert snap["count"] == 0
    assert snap["p50"] == 0 and snap["p95"] == 0 and snap["max"] == 0


def test_percentile_edge_cases():
    assert _percentile([10.0], 0.5) == 10.0
    assert _percentile([1.0, 2.0], 0.0) == 1.0
    assert _percentile([1.0, 2.0], 1.0) == 2.0


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registration_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("net.messages_sent")
    b = reg.counter("net.messages_sent")
    assert a is b
    assert len(reg) == 1


def test_names_validated_against_subsystems():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("nodotname")
    with pytest.raises(ValueError):
        reg.counter("bogus_subsystem.thing")
    # every documented subsystem is accepted
    for subsystem in ("net", "transport", "storage", "protocol", "recovery", "sim"):
        reg.counter(f"{subsystem}.ok")


def test_type_conflicts_rejected():
    reg = MetricsRegistry()
    reg.counter("net.messages_sent")
    with pytest.raises(ValueError):
        reg.gauge("net.messages_sent")
    with pytest.raises(ValueError):
        reg.histogram("net.messages_sent")


def test_snapshot_by_subsystem():
    reg = MetricsRegistry()
    reg.counter("net.messages_sent").inc(7)
    reg.histogram("storage.op_latency").observe(0.02)
    reg.gauge("sim.events_processed").set(100)
    full = reg.snapshot()
    assert set(full) == {
        "net.messages_sent", "storage.op_latency", "sim.events_processed"
    }
    assert full["net.messages_sent"] == {"type": "counter", "value": 7}
    net_only = reg.snapshot(subsystem="net")
    assert set(net_only) == {"net.messages_sent"}


# ----------------------------------------------------------------------
# a real run feeds the registry
# ----------------------------------------------------------------------
def test_run_populates_registry_and_result():
    system = single_failure(recovery="nonblocking")
    result = system.run()
    metrics = result.extra["metrics"]
    assert metrics["net.messages_sent"]["value"] > 0
    assert metrics["net.bytes_sent"]["value"] > 0
    assert metrics["storage.ops"]["value"] >= 1
    assert metrics["recovery.episodes"]["value"] == 1
    hist = metrics["recovery.episode_duration"]
    assert hist["count"] == 1
    assert hist["max"] == pytest.approx(result.episodes[0].total_duration)
    assert metrics["sim.events_processed"]["value"] == result.extra["events_processed"]


def test_summarize_twice_does_not_double_count():
    system = single_failure(recovery="nonblocking")
    system.run()
    again = system.summarize()
    assert again.extra["metrics"]["recovery.episodes"]["value"] == 1
