"""Tests for the ASCII timeline renderer."""

import pytest

from repro import build_system, crash_at
from repro.analysis.timeline import (
    BLOCKED,
    CRASH,
    RECOVERED,
    TimelineRenderer,
    render_timeline,
)
from repro.sim.trace import TraceRecorder

from helpers import small_config


def test_empty_trace():
    assert render_timeline(TraceRecorder()) == "(empty trace)"


def test_width_validated():
    with pytest.raises(ValueError):
        TimelineRenderer(TraceRecorder(), width=5)


def test_failure_free_run_is_all_live():
    system = build_system(small_config(n=4, hops=10))
    system.run()
    text = render_timeline(system.trace)
    assert CRASH not in text.replace("X crash", "")
    assert text.count("n0") == 1
    for node in range(4):
        assert f"n{node}" in text


def test_crash_and_recovery_marks_present():
    system = build_system(
        small_config(n=4, hops=15, crashes=[crash_at(node=2, time=0.03)])
    )
    system.run()
    text = render_timeline(system.trace)
    lanes = {line[1:3].strip(): line for line in text.splitlines() if line.startswith("n")}
    assert CRASH in lanes["2"]
    assert RECOVERED in lanes["2"]
    # live nodes never show a crash
    assert CRASH not in lanes["0"]


def test_blocking_recovery_shows_blocked_lanes():
    system = build_system(
        small_config(n=4, recovery="blocking", hops=15,
                     crashes=[crash_at(node=2, time=0.03)])
    )
    system.run()
    text = render_timeline(system.trace)
    lanes = {line[1:3].strip(): line for line in text.splitlines() if line.startswith("n")}
    assert BLOCKED in lanes["0"]
    assert BLOCKED in lanes["1"]


def test_nonblocking_recovery_shows_no_blocked_lanes():
    system = build_system(
        small_config(n=4, recovery="nonblocking", hops=15,
                     crashes=[crash_at(node=2, time=0.03)])
    )
    system.run()
    text = render_timeline(system.trace)
    lanes = {line[1:3].strip(): line for line in text.splitlines() if line.startswith("n")}
    for node in ("0", "1", "3"):
        assert BLOCKED not in lanes[node]


def test_custom_width_respected():
    system = build_system(small_config(n=4, hops=10))
    system.run()
    text = render_timeline(system.trace, width=40)
    for line in text.splitlines():
        if line.startswith("n"):
            assert len(line) == len("n0  |") + 40 + 1


def test_legend_present():
    system = build_system(small_config(n=4, hops=10))
    system.run()
    assert "legend:" in render_timeline(system.trace)
