"""Tests for the ASCII timeline renderer."""

import pytest

from repro import build_system, crash_at
from repro.analysis.timeline import (
    BLOCKED,
    CRASH,
    RECOVERED,
    TimelineRenderer,
    render_timeline,
)
from repro.sim.trace import TraceRecorder

from helpers import small_config


def test_empty_trace():
    assert render_timeline(TraceRecorder()) == "(empty trace)"


def test_width_validated():
    with pytest.raises(ValueError):
        TimelineRenderer(TraceRecorder(), width=5)


def test_failure_free_run_is_all_live():
    system = build_system(small_config(n=4, hops=10))
    system.run()
    text = render_timeline(system.trace)
    assert CRASH not in text.replace("X crash", "")
    assert text.count("n0") == 1
    for node in range(4):
        assert f"n{node}" in text


def test_crash_and_recovery_marks_present():
    system = build_system(
        small_config(n=4, hops=15, crashes=[crash_at(node=2, time=0.03)])
    )
    system.run()
    text = render_timeline(system.trace)
    lanes = {line[1:3].strip(): line for line in text.splitlines() if line.startswith("n")}
    assert CRASH in lanes["2"]
    assert RECOVERED in lanes["2"]
    # live nodes never show a crash
    assert CRASH not in lanes["0"]


def test_blocking_recovery_shows_blocked_lanes():
    system = build_system(
        small_config(n=4, recovery="blocking", hops=15,
                     crashes=[crash_at(node=2, time=0.03)])
    )
    system.run()
    text = render_timeline(system.trace)
    lanes = {line[1:3].strip(): line for line in text.splitlines() if line.startswith("n")}
    assert BLOCKED in lanes["0"]
    assert BLOCKED in lanes["1"]


def test_nonblocking_recovery_shows_no_blocked_lanes():
    system = build_system(
        small_config(n=4, recovery="nonblocking", hops=15,
                     crashes=[crash_at(node=2, time=0.03)])
    )
    system.run()
    text = render_timeline(system.trace)
    lanes = {line[1:3].strip(): line for line in text.splitlines() if line.startswith("n")}
    for node in ("0", "1", "3"):
        assert BLOCKED not in lanes[node]


def test_custom_width_respected():
    system = build_system(small_config(n=4, hops=10))
    system.run()
    text = render_timeline(system.trace, width=40)
    for line in text.splitlines():
        if line.startswith("n"):
            assert len(line) == len("n0  |") + 40 + 1


def test_legend_present():
    system = build_system(small_config(n=4, hops=10))
    system.run()
    assert "legend:" in render_timeline(system.trace)


def test_multi_restart_episode_renders_every_cycle():
    """A node that crashes again mid-recovery gets both crash marks and
    ends live: the lane must show two crash/restart cycles, not swallow
    the superseded one."""
    trace = TraceRecorder()
    trace.record(0.0, "node", 0, "start")
    trace.record(0.0, "node", 1, "start")
    # first crash: restore begins, then a second crash aborts it
    trace.record(1.0, "node", 1, "crash")
    trace.record(2.0, "node", 1, "restart_begin")
    trace.record(2.5, "node", 1, "crash")
    # second episode runs to completion
    trace.record(3.5, "node", 1, "restart_begin")
    trace.record(4.5, "node", 1, "restored")
    trace.record(5.0, "node", 1, "recovered")
    trace.record(10.0, "node", 1, "tick")
    text = render_timeline(trace, width=60)
    lane = next(l for l in text.splitlines() if l.startswith("n1"))
    assert lane.count(CRASH) == 2
    assert lane.count("R") == 2
    assert RECOVERED in lane
    # after the final recovery the lane returns to live
    assert lane.rstrip("|").endswith("=")


def test_multi_restart_episode_from_real_run():
    """failure_during_recovery: the victim crashes again while gathering;
    the timeline must show the full double-recovery without error."""
    from repro.experiments import failure_during_recovery

    system = failure_during_recovery(
        "nonblocking", detection_delay=0.5, state_bytes=100_000
    )
    result = system.run()
    assert result.consistent
    text = render_timeline(system.trace)
    lanes = {line[1:3].strip(): line for line in text.splitlines() if line.startswith("n")}
    assert CRASH in lanes["3"]
    assert CRASH in lanes["5"]
    assert RECOVERED in lanes["3"]
    assert RECOVERED in lanes["5"]


def test_overlapping_block_intervals_from_two_failures():
    """Two crashes close together under blocking recovery: live nodes
    carry overlapping block intervals and every blocked lane renders."""
    system = build_system(
        small_config(
            n=5, recovery="blocking", hops=25,
            crashes=[crash_at(node=2, time=0.03), crash_at(node=4, time=0.05)],
        )
    )
    result = system.run()
    assert result.consistent
    # the metrics layer really saw concurrent blocking...
    intervals = [
        (i.start, i.end) for i in system.metrics.block_intervals if i.end is not None
    ]
    assert intervals, "blocking recovery produced no block intervals"
    overlapping = any(
        a_start < b_end and b_start < a_end
        for i, (a_start, a_end) in enumerate(intervals)
        for (b_start, b_end) in intervals[i + 1:]
    )
    assert overlapping, f"expected overlapping block intervals, got {intervals}"
    # ...and the renderer shows the stall on the surviving nodes
    text = render_timeline(system.trace)
    lanes = {line[1:3].strip(): line for line in text.splitlines() if line.startswith("n")}
    for node in ("0", "1", "3"):
        assert BLOCKED in lanes[node]
