"""Tests for the blocking (message-optimal) recovery baseline."""

import pytest

from repro import build_system, crash_at, crash_on

from helpers import small_config


def run_system(config):
    system = build_system(config)
    result = system.run()
    return system, result


def single_crash(n=6, **kw):
    return small_config(
        n=n, recovery="blocking", hops=25,
        crashes=[crash_at(node=2, time=0.02)], **kw,
    )


class TestSingleFailure:
    def test_recovers_consistently(self):
        system, result = run_system(single_crash())
        assert result.consistent
        assert len(result.recovery_durations()) == 1

    def test_every_live_process_blocks(self):
        """The paper's E1: each live process blocks (tens of ms) while
        the new algorithm would block none."""
        system, result = run_system(single_crash())
        for node in system.nodes:
            if node.node_id != 2:
                assert result.blocked_time_by_node.get(node.node_id, 0.0) > 0

    def test_blocked_time_is_tens_of_milliseconds(self):
        system, result = run_system(single_crash())
        mean = result.mean_blocked_time(exclude=[2])
        assert 0.005 < mean < 0.5

    def test_live_processes_write_replies_to_stable_storage(self):
        """The sync-write requirement the new algorithm removes."""
        system, result = run_system(single_crash())
        for node in system.nodes:
            if node.node_id != 2:
                assert result.sync_stall_time(node.node_id) > 0
                assert node.recovery.sync_reply_writes == 1

    def test_fewer_recovery_messages_than_nonblocking(self):
        """Message-optimality: this is what the baseline is optimized for."""
        blocking = run_system(single_crash(seed=11))[1]
        nonblocking = run_system(
            small_config(n=6, recovery="nonblocking", hops=25, seed=11,
                         crashes=[crash_at(node=2, time=0.02)])
        )[1]
        assert blocking.recovery_messages() < nonblocking.recovery_messages()

    def test_recovery_duration_close_to_nonblocking(self):
        """Both algorithms recover the failed process in about the same
        time (detection + restore dominate)."""
        blocking = run_system(single_crash(seed=5))[1]
        nonblocking = run_system(
            small_config(n=6, recovery="nonblocking", hops=25, seed=5,
                         crashes=[crash_at(node=2, time=0.02)])
        )[1]
        b = blocking.recovery_durations()[0]
        nb = nonblocking.recovery_durations()[0]
        assert abs(b - nb) / max(b, nb) < 0.1

    def test_unblocks_after_completion(self):
        system, result = run_system(single_crash())
        for node in system.nodes:
            assert not node.blocked

    def test_queued_messages_delivered_after_unblock(self):
        """Blocking must not lose messages, only delay them."""
        system, result = run_system(single_crash())
        assert result.consistent
        # progress resumed post-recovery: all chains eventually quiesced
        assert result.final_progress > 0


class TestFailureDuringRecovery:
    def test_second_crash_extends_blocking(self):
        """E2: live processes stay blocked across the second failure's
        detection and restore -- seconds, not milliseconds."""
        config = small_config(
            n=6, recovery="blocking", hops=25,
            crashes=[
                crash_at(node=2, time=0.02),
                crash_on(4, "net", "deliver", match_node=4,
                         match_details={"mtype": "recovery_request"},
                         immediate=True),
            ],
        )
        system, result = run_system(config)
        assert result.consistent
        assert len(result.recovery_durations()) == 2
        # blocked time now spans detection (0.5 s) + restore of node 4
        for node in system.nodes:
            if node.node_id not in (2, 4):
                assert result.blocked_time_by_node[node.node_id] > config.detection_delay

    def test_proceeds_without_reply_from_crashed_peer(self):
        config = small_config(
            n=6, recovery="blocking", hops=25,
            crashes=[
                crash_at(node=2, time=0.02),
                crash_on(4, "net", "deliver", match_node=4,
                         match_details={"mtype": "recovery_request"},
                         immediate=True),
            ],
        )
        system, result = run_system(config)
        episodes = {e.node: e for e in result.episodes}
        assert episodes[2].complete
        assert episodes[4].complete

    def test_two_independent_crashes(self):
        config = small_config(
            n=6, recovery="blocking", hops=30,
            crashes=[crash_at(node=1, time=0.02), crash_at(node=3, time=0.03)],
        )
        system, result = run_system(config)
        assert result.consistent
        assert len(result.recovery_durations()) == 2


class TestGatherRaces:
    """Races between the gather and determinant copies still in flight.

    FBL counts a destination toward f+1 replication at *send* time, so a
    recovery gather can run while the only surviving copy of a needed
    determinant sits in the network -- or, worse, in a blocked peer's
    undelivered-message queue.  Found by the chaos harness
    (fbl/blocking, seed 82): a partition delayed a piggyback carrier for
    half a second; its two other believed hosts were exactly the two
    crashed nodes; the carrier reached the last live host while that
    host was blocked, and the host's reply -- composed from delivered
    state only -- omitted the determinant the replay needed.
    """

    def test_chaos_seed_82_partitioned_carrier_recovers(self):
        from test_chaos import chaos_config

        config = chaos_config("fbl", "blocking", 2, 82)
        system, result = run_system(config)
        assert result.consistent
        assert all(e.complete for e in result.episodes)
        assert all(node.is_live for node in system.nodes)

    def test_blocked_queue_piggybacks_reach_the_reply(self):
        """Determinants queued behind a block must appear in the depinfo
        reply (on the reliable transport, where carriers can be late)."""
        from repro.net.network import Message, MessageKind

        system = build_system(small_config(recovery="blocking"))
        node = system.nodes[0]
        node.start()
        node.block()
        carrier = Message(
            src=1, dst=0, kind=MessageKind.APPLICATION, mtype="app",
            payload={"data": {}}, ssn=0,
            piggyback=[((1, 0, 3, 5), (1, 3))],
        )
        node.receive(carrier)
        assert (1, 0, 3, 5) not in node.protocol.local_depinfo_wire()
        node.protocol.absorb_piggybacks(node.blocked_app_messages())
        assert (1, 0, 3, 5) in node.protocol.local_depinfo_wire()

    def test_replay_gap_detection(self):
        system = build_system(small_config(recovery="blocking"))
        rec = system.nodes[0].recovery
        me = 0
        assert rec._replay_gap([]) == []
        assert rec._replay_gap([(1, 0, me, 0), (1, 1, me, 1)]) == []
        assert rec._replay_gap([(1, 0, me, 0), (1, 1, me, 2)]) == [1]
        # other receivers' determinants are not this replay's problem
        assert rec._replay_gap([(0, 0, 4, 7)]) == []
