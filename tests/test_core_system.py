"""Tests for system assembly and run control."""

import pytest

from repro import SystemConfig, build_system, crash_at

from helpers import small_config


def test_double_start_rejected():
    system = build_system(small_config(n=4, hops=5))
    system.start()
    with pytest.raises(RuntimeError):
        system.start()
    system.sim.run()


def test_run_starts_automatically():
    system = build_system(small_config(n=4, hops=5))
    result = system.run()
    assert result.total_deliveries > 0


def test_run_until_horizon_stops_early():
    config = small_config(n=4, hops=40, crashes=[crash_at(2, 0.02)],
                          run_until=0.1)
    system = build_system(config)
    result = system.run()
    assert result.end_time == pytest.approx(0.1)
    # recovery has not completed by the horizon...
    assert not system.nodes[2].is_live
    # ...so the safety check is deferred, and that is reported
    assert result.extra["safety_checked"] is False


def test_max_events_livelock_guard():
    config = small_config(n=4, hops=10, max_events=50)
    system = build_system(config)
    with pytest.raises(RuntimeError):
        system.run()


def test_topology_includes_sequencer():
    system = build_system(small_config(n=4, hops=5))
    assert len(system.topology) == 5
    assert system.sequencer.node_id == 4
    system.run()


def test_crash_node_is_idempotent():
    system = build_system(small_config(n=4, hops=5))
    system.start()
    system.crash_node(2)
    count = system.nodes[2].crash_count
    system.crash_node(2)
    assert system.nodes[2].crash_count == count
    system.sim.run()


def test_null_oracle_for_coordinated():
    from repro.core.oracle import NullOracle

    system = build_system(small_config(
        protocol="coordinated", recovery="coordinated",
        protocol_params={"snapshot_every": 8},
    ))
    assert isinstance(system.oracle, NullOracle)
    system.run()


def test_result_extra_contains_protocol_and_recovery_stats():
    system = build_system(small_config(n=4, hops=10))
    result = system.run()
    assert set(result.extra["protocol_stats"]) == {0, 1, 2, 3}
    assert set(result.extra["recovery_stats"]) == {0, 1, 2, 3}
    assert result.extra["events_processed"] > 0


def test_node_accessor():
    system = build_system(small_config(n=4, hops=5))
    assert system.node(2) is system.nodes[2]
    system.run()


def test_storage_ops_reported_per_node():
    system = build_system(small_config(
        n=4, protocol="pessimistic", recovery="local", hops=10,
    ))
    result = system.run()
    for node_id, ops in result.storage_ops.items():
        assert ops["writes"] >= 0
        assert "sync_stall" in ops
