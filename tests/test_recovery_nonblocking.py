"""Tests for the paper's new non-blocking recovery algorithm."""

import pytest

from repro import build_system, crash_at, crash_on

from helpers import small_config


def run_system(config):
    system = build_system(config)
    result = system.run()
    return system, result


def single_crash(n=6, hops=25, **kw):
    return small_config(
        n=n, recovery="nonblocking", hops=hops,
        crashes=[crash_at(node=2, time=0.02)], **kw,
    )


class TestSingleFailure:
    def test_recovers_consistently(self):
        system, result = run_system(single_crash())
        assert result.consistent
        assert len(result.recovery_durations()) == 1

    def test_live_processes_never_block(self):
        """The headline property: zero blocked time at live processes."""
        system, result = run_system(single_crash())
        assert result.total_blocked_time == 0.0
        assert result.blocked_time_by_node == {}

    def test_live_processes_do_no_sync_storage_writes(self):
        system, result = run_system(single_crash())
        for node in system.nodes:
            if node.node_id != 2:
                assert result.sync_stall_time(node.node_id) == 0.0

    def test_recovery_dominated_by_detection_and_restore(self):
        config = single_crash()
        system, result = run_system(config)
        episode = result.episodes[0]
        assert episode.detection_duration == pytest.approx(config.detection_delay)
        assert episode.restore_duration > 0
        overhead = episode.total_duration - episode.detection_duration - episode.restore_duration
        # the algorithm itself costs milliseconds (the paper's claim)
        assert overhead < 0.1

    def test_crashed_node_becomes_leader(self):
        system, result = run_system(single_crash())
        assert result.episodes[0].was_leader

    def test_incarnation_incremented(self):
        system, result = run_system(single_crash())
        assert system.nodes[2].incarnation == 1

    def test_live_nodes_learn_incvector(self):
        system, result = run_system(single_crash())
        for node in system.nodes:
            if node.node_id != 2:
                assert node.incvector.get(2) == 1

    def test_algorithm_message_pattern(self):
        """ord round-trip + depinfo round + distribute/complete traffic."""
        config = single_crash(n=6)
        system, result = run_system(config)
        trace = system.trace
        assert trace.count("sequencer", "ord_granted") == 1
        assert trace.count("recovery", "depinfo_request_received") == 5
        assert trace.count("recovery", "gather_start") == 1

    def test_app_traffic_continues_during_recovery(self):
        """Live processes keep delivering while node 2 recovers.

        Uses long-lived ping-pong pairs: the (2, 3) pair stalls with the
        crash, but (0, 1) and (4, 5) must keep exchanging messages
        through the whole detection window -- the non-blocking property.
        """
        # f=1 so determinants stabilize within a pair (with f=2 a
        # two-party workload can never reach f+1 hosts and piggybacks
        # grow without bound -- a real FBL phenomenon, but slow to test)
        config = single_crash(
            workload="ping_pong", workload_params={"hops": 4_000}, hops=0, f=1
        )
        system = build_system(config)
        system.start()
        crash_time = 0.02
        system.sim.run(until=crash_time + config.detection_delay / 2)
        mid = {n.node_id: n.app.delivered_count for n in system.nodes}
        system.sim.run(until=crash_time + config.detection_delay)
        later = {n.node_id: n.app.delivered_count for n in system.nodes}
        progressed = [n for n in mid if n != 2 and later[n] > mid[n]]
        assert progressed, "live processes made no progress during the outage"
        system.sim.run()


class TestFailureDuringRecovery:
    def test_crash_before_reply_invalidates_only_that_reply(self):
        """A live process dying before its depinfo reply no longer voids
        the round: only the reply it owed is invalidated, and the round
        resumes once the failed process rejoins R."""
        config = small_config(
            n=6, recovery="nonblocking", hops=25,
            crashes=[
                crash_at(node=2, time=0.02),
                crash_on(4, "net", "deliver", match_node=4,
                         match_details={"mtype": "depinfo_request"},
                         immediate=True),
            ],
        )
        system, result = run_system(config)
        assert result.consistent
        assert len(result.recovery_durations()) == 2
        assert sum(e.gather_restarts for e in result.episodes) == 0
        assert sum(e.reply_invalidations for e in result.episodes) >= 1
        assert result.total_blocked_time == 0.0

    def test_crash_before_reply_restarts_gather_in_legacy_variant(self):
        """The seed's literal 'goto 4' is preserved by the
        nonblocking-restart manager."""
        config = small_config(
            n=6, recovery="nonblocking-restart", hops=25,
            crashes=[
                crash_at(node=2, time=0.02),
                crash_on(4, "net", "deliver", match_node=4,
                         match_details={"mtype": "depinfo_request"},
                         immediate=True),
            ],
        )
        system, result = run_system(config)
        assert result.consistent
        assert len(result.recovery_durations()) == 2
        assert sum(e.gather_restarts for e in result.episodes) >= 1
        assert result.total_blocked_time == 0.0

    def test_crash_after_reply_needs_no_restart(self):
        config = small_config(
            n=6, recovery="nonblocking", hops=25,
            crashes=[
                crash_at(node=2, time=0.02),
                crash_on(4, "recovery", "depinfo_request_received", match_node=4),
            ],
        )
        system, result = run_system(config)
        assert result.consistent
        assert len(result.recovery_durations()) == 2

    def test_leader_failure_promotes_next_ordinal(self):
        config = small_config(
            n=6, recovery="nonblocking", hops=25,
            crashes=[
                crash_at(node=2, time=0.02),
                crash_at(node=4, time=0.03),
                crash_on(2, "recovery", "leader_elected", match_node=2,
                         immediate=True),
            ],
        )
        system, result = run_system(config)
        assert result.consistent
        # three crash episodes: node 2's first ends in its re-crash (never
        # completes); the other two recover fully
        assert len(result.episodes) == 3
        assert len(result.recovery_durations()) == 2
        final_by_node = {e.node: e for e in result.episodes}
        assert final_by_node[2].complete and final_by_node[4].complete
        leaders = [e for e in result.episodes if e.was_leader]
        assert len(leaders) >= 2

    def test_three_concurrent_failures_with_f_3(self):
        config = small_config(
            n=8, f=3, recovery="nonblocking", hops=30,
            crashes=[
                crash_at(node=1, time=0.02),
                crash_at(node=3, time=0.025),
                crash_at(node=5, time=0.03),
            ],
        )
        system, result = run_system(config)
        assert result.consistent
        assert len(result.recovery_durations()) == 3
        assert result.total_blocked_time == 0.0

    def test_sequential_failures_of_same_node(self):
        config = small_config(
            n=6, recovery="nonblocking", hops=40,
            crashes=[crash_at(node=2, time=0.02), crash_at(node=2, time=5.0)],
        )
        system, result = run_system(config)
        assert result.consistent
        assert len(result.recovery_durations()) == 2
        assert system.nodes[2].incarnation == 2


class TestStateMachineDetails:
    def test_manager_idle_after_completion(self):
        system, result = run_system(single_crash())
        manager = system.nodes[2].recovery
        assert manager.role == "idle"
        assert manager.ord is None

    def test_sequencer_active_empty_after_completion(self):
        system, result = run_system(single_crash())
        assert system.sequencer.active == {}

    def test_stale_messages_rejected_after_incvector_update(self):
        system, result = run_system(single_crash())
        # any reject_stale events are fine; what matters is none were
        # *delivered*: the oracle already checked consistency, and every
        # delivered message obeys incvector
        for node in system.nodes:
            for event in system.trace.select("node", node.node_id, "reject_stale"):
                assert event.details["incarnation"] < node.incvector[event.details["src"]]
