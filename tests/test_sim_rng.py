"""Unit tests for named deterministic random streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_returns_same_stream():
    rngs = RngRegistry(42)
    assert rngs.stream("a") is rngs.stream("a")


def test_different_names_are_independent():
    rngs = RngRegistry(42)
    a = [rngs.stream("a").random() for _ in range(5)]
    b = [rngs.stream("b").random() for _ in range(5)]
    assert a != b


def test_reproducible_across_registries():
    first = [RngRegistry(7).stream("net").random() for _ in range(3)]
    second = [RngRegistry(7).stream("net").random() for _ in range(3)]
    assert first == second


def test_different_root_seeds_differ():
    a = RngRegistry(1).stream("net").random()
    b = RngRegistry(2).stream("net").random()
    assert a != b


def test_derive_seed_is_stable():
    assert derive_seed(5, "x") == derive_seed(5, "x")
    assert derive_seed(5, "x") != derive_seed(5, "y")
    assert derive_seed(5, "x") != derive_seed(6, "x")


def test_draws_on_one_stream_do_not_affect_another():
    rngs = RngRegistry(9)
    baseline = RngRegistry(9).stream("b").random()
    for _ in range(100):
        rngs.stream("a").random()
    assert rngs.stream("b").random() == baseline


def test_reset_restores_initial_state():
    rngs = RngRegistry(3)
    first = rngs.stream("s").random()
    rngs.reset("s")
    assert rngs.stream("s").random() == first


def test_fork_is_independent():
    parent = RngRegistry(3)
    child = parent.fork("child")
    assert child.root_seed != parent.root_seed
    assert parent.stream("x").random() != child.stream("x").random()


def test_contains():
    rngs = RngRegistry(0)
    assert "a" not in rngs
    rngs.stream("a")
    assert "a" in rngs
