"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceEvent, TraceRecorder


def test_record_and_select():
    trace = TraceRecorder()
    trace.record(1.0, "net", 0, "send", dst=1)
    trace.record(2.0, "net", 1, "deliver", src=0)
    trace.record(3.0, "node", 0, "crash")
    assert len(trace) == 3
    assert len(trace.select(category="net")) == 2
    assert len(trace.select(node=0)) == 2
    assert len(trace.select(category="net", action="send")) == 1


def test_counters_track_category_action():
    trace = TraceRecorder()
    for _ in range(4):
        trace.record(0.0, "app", 1, "deliver")
    trace.record(0.0, "app", 1, "reject")
    assert trace.count("app", "deliver") == 4
    assert trace.count("app", "reject") == 1
    assert trace.count("app") == 5
    assert trace.count("missing") == 0


def test_first_and_last():
    trace = TraceRecorder()
    trace.record(1.0, "x", 0, "a")
    trace.record(2.0, "x", 1, "a")
    trace.record(3.0, "x", 2, "a")
    assert trace.first(category="x").node == 0
    assert trace.last(category="x").node == 2
    assert trace.first(category="y") is None
    assert trace.last(category="y") is None


def test_subscribe_receives_events():
    trace = TraceRecorder()
    seen = []
    trace.subscribe(seen.append)
    trace.record(1.0, "x", 0, "a")
    assert len(seen) == 1
    assert seen[0].action == "a"


def test_unsubscribe_stops_events():
    trace = TraceRecorder()
    seen = []
    trace.subscribe(seen.append)
    trace.unsubscribe(seen.append)
    trace.record(1.0, "x", 0, "a")
    assert seen == []


def test_keep_events_false_only_counts():
    trace = TraceRecorder(keep_events=False)
    trace.record(1.0, "x", 0, "a")
    assert len(trace) == 0
    assert trace.count("x", "a") == 1


def test_event_matches_filters():
    event = TraceEvent(1.0, "net", 3, "send", {"dst": 4})
    assert event.matches()
    assert event.matches(category="net")
    assert event.matches(node=3, action="send")
    assert not event.matches(category="app")
    assert not event.matches(node=4)
    assert not event.matches(action="deliver")


def test_clear_resets_everything():
    trace = TraceRecorder()
    trace.record(1.0, "x", 0, "a")
    trace.clear()
    assert len(trace) == 0
    assert trace.count("x") == 0


def test_details_stored():
    trace = TraceRecorder()
    event = trace.record(1.0, "net", 0, "send", dst=7, size=100)
    assert event.details == {"dst": 7, "size": 100}


def test_iter_select_lazy():
    trace = TraceRecorder()
    for i in range(5):
        trace.record(float(i), "x", i, "a")
    nodes = [e.node for e in trace.iter_select(category="x")]
    assert nodes == [0, 1, 2, 3, 4]
