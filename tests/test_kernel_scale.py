"""The kernel's intra-run scale machinery: event pool, schedule_fast,
configurable drain ceiling.

The safety argument under test: only handle-free (``schedule_fast``)
events are ever pooled, and they are released only *after* firing -- so
a recycled Event can never be reached by a stale EventHandle, never be a
cancelled corpse, and never confuse the exact ``live_events`` counter.
"""

import pytest

from repro.sim.kernel import (
    DRAIN_MAX_EVENTS,
    EVENT_POOL_MAX,
    SimulationError,
    Simulator,
)


# ----------------------------------------------------------------------
# schedule_fast semantics
# ----------------------------------------------------------------------
def test_schedule_fast_returns_no_handle():
    sim = Simulator()
    assert sim.schedule_fast(0.0, lambda: None) is None


def test_schedule_fast_rejects_past():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_fast(-0.1, lambda: None)
    sim.schedule_fast(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_fast_at(0.5, lambda: None)


def test_schedule_fast_orders_identically_to_schedule():
    """Both paths share one sequence counter, so interleaving them keeps
    exact FIFO order at equal (time, priority)."""
    sim = Simulator()
    fired = []
    for i in range(10):
        if i % 2:
            sim.schedule_fast(0.5, fired.append, i)
        else:
            sim.schedule(0.5, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_schedule_fast_respects_priority():
    sim = Simulator()
    fired = []
    sim.schedule_fast(0.1, fired.append, "late", priority=1)
    sim.schedule_fast(0.1, fired.append, "early", priority=-1)
    sim.run()
    assert fired == ["early", "late"]


def test_schedule_fast_tiebreak_seed_replays_deterministically():
    def run_once(seed):
        sim = Simulator(tiebreak_seed=seed)
        fired = []
        for i in range(20):
            sim.schedule_fast(0.1, fired.append, i)
        sim.run()
        return fired

    assert run_once(7) == run_once(7)
    assert run_once(7) != list(range(20)) or run_once(11) != list(range(20))


# ----------------------------------------------------------------------
# the event pool
# ----------------------------------------------------------------------
def test_pool_recycles_fired_events():
    sim = Simulator()
    state = {"left": 500}

    def tick():
        if state["left"]:
            state["left"] -= 1
            sim.schedule_fast(0.001, tick)

    sim.schedule_fast(0.0, tick)
    sim.run()
    # the chain reuses one pooled object for every hop after the first
    assert sim.pool_reuses >= 499
    assert 1 <= sim.pool_size <= EVENT_POOL_MAX


def test_pool_never_holds_handle_backed_events():
    """schedule() events are never pooled, fired or not."""
    sim = Simulator()
    for i in range(50):
        sim.schedule(0.001 * i, lambda: None)
    sim.run()
    assert sim.pool_size == 0
    assert sim.pool_reuses == 0


def test_released_events_do_not_pin_callbacks():
    """After release, the pooled object's slots are cleared."""
    sim = Simulator()
    payload = ["sentinel"]
    sim.schedule_fast(0.0, payload.append, "x", label="pinned?")
    sim.run()
    assert sim.pool_size == 1
    pooled = sim._pool[0]
    assert pooled.args == ()
    assert pooled.kwargs is None
    assert pooled.label == ""
    assert not pooled.cancelled
    with pytest.raises(SimulationError):
        pooled.fn()  # the tripwire callback


def test_recycled_event_cannot_resurrect_cancelled_corpse():
    """Cancel a handle-backed event, then recycle pooled events through
    the same (time, priority) region: the corpse must stay dead and
    live_events must stay exact."""
    sim = Simulator()
    fired = []

    handle = sim.schedule(0.5, fired.append, "corpse")
    for i in range(10):
        sim.schedule_fast(0.5, fired.append, i)
    handle.cancel()
    assert sim.live_events == 10
    sim.run()
    assert "corpse" not in fired
    assert fired == list(range(10))
    assert sim.live_events == 0
    # recycle through another batch at a later time: still no corpse
    for i in range(10, 20):
        sim.schedule_fast(0.1, fired.append, i)
    sim.run()
    assert fired == list(range(20))


def test_pool_reuse_with_cancellations_interleaved():
    """The retransmit pattern with a pooled chain riding along: exact
    live-event accounting throughout."""
    sim = Simulator()
    state = {"prev": None, "steps": 0}

    def step():
        state["steps"] += 1
        if state["prev"] is not None:
            state["prev"].cancel()
        state["prev"] = sim.schedule(30.0, lambda: None, label="retransmit")
        if state["steps"] < 200:
            sim.schedule_fast(0.001, step)

    sim.schedule_fast(0.0, step)
    sim.run()
    assert state["steps"] == 200
    assert sim.pool_reuses >= 198
    assert sim.live_events == 0


def test_pool_interacts_with_compaction():
    """Compaction rebuilds the heap around live pooled events; ordering
    and accounting survive."""
    sim = Simulator(compact_min_heap=64, compact_ratio=0.5)
    fired = []
    handles = [sim.schedule(10.0 + i, lambda: None) for i in range(100)]
    for i in range(10):
        sim.schedule_fast(20.0 + i, fired.append, i)
    for handle in handles:
        handle.cancel()  # triggers at least one compaction
    assert sim.compactions >= 1
    assert sim.live_events == 10
    sim.run()
    assert fired == list(range(10))
    assert sim.pool_reuses + sim.pool_size >= 1


def test_pool_bounded_by_event_pool_max():
    sim = Simulator()
    # schedule far more same-instant events than the pool may retain
    for i in range(EVENT_POOL_MAX + 500):
        sim.schedule_fast(0.001, lambda: None)
    sim.run()
    assert sim.pool_size <= EVENT_POOL_MAX


def test_pool_with_choice_oracle():
    """The oracle pop path must release pooled events too, and a
    recycled event must never re-enter a tie group as a ghost."""
    sim = Simulator()
    fired = []
    sim.set_choice_oracle(lambda width: width - 1)  # always pick last
    for i in range(6):
        sim.schedule_fast(0.1, fired.append, i)
    while sim.step():
        pass
    assert sorted(fired) == list(range(6))
    assert fired == list(reversed(range(6)))  # oracle picked last each time
    assert sim.pool_reuses + sim.pool_size >= 1
    assert sim.live_events == 0


def test_pool_with_choice_oracle_and_cancelled_corpse():
    sim = Simulator()
    fired = []
    sim.set_choice_oracle(lambda width: 0)
    corpse = sim.schedule(0.1, fired.append, "corpse")
    for i in range(4):
        sim.schedule_fast(0.1, fired.append, i)
    corpse.cancel()
    while sim.step():
        pass
    assert fired == list(range(4))
    assert sim.live_events == 0


# ----------------------------------------------------------------------
# configurable drain ceiling
# ----------------------------------------------------------------------
def _endless(sim):
    def tick():
        sim.schedule_fast(0.001, tick)
    return tick


def test_drain_default_ceiling_is_large():
    assert DRAIN_MAX_EVENTS == 100_000_000
    sim = Simulator()
    assert sim._drain_max_events == DRAIN_MAX_EVENTS


def test_drain_uses_constructor_ceiling():
    sim = Simulator(drain_max_events=50)
    sim.schedule_fast(0.0, _endless(sim))
    with pytest.raises(SimulationError):
        sim.drain()


def test_drain_explicit_argument_overrides_constructor():
    sim = Simulator(drain_max_events=1_000_000)
    sim.schedule_fast(0.0, _endless(sim))
    with pytest.raises(SimulationError):
        sim.drain(max_events=25)


def test_drain_completes_under_ceiling():
    sim = Simulator(drain_max_events=1_000)
    fired = []
    for i in range(5):
        sim.schedule_fast(0.01 * i, fired.append, i)
    sim.drain()
    assert fired == list(range(5))


def test_system_config_plumbs_drain_max_events():
    from helpers import small_config
    from repro import build_system

    system = build_system(small_config(n=4, hops=10, drain_max_events=123))
    assert system.sim._drain_max_events == 123
