"""Unit tests for transient stable-storage fault injection."""

import random

import pytest

from repro.sim.kernel import Simulator
from repro.storage.stable import (
    StableStorage,
    StorageFaultError,
    StorageFaultModel,
    StorageRetryPolicy,
)


def make_storage(faults=None, seed=1, **kw):
    sim = Simulator()
    storage = StableStorage(
        sim, owner=0, faults=faults, rng=random.Random(seed), **kw
    )
    return sim, storage


def test_retry_policy_validation_and_backoff():
    with pytest.raises(ValueError):
        StorageRetryPolicy(base_delay=-1)
    with pytest.raises(ValueError):
        StorageRetryPolicy(multiplier=0.9)
    with pytest.raises(ValueError):
        StorageRetryPolicy(max_attempts=0)
    p = StorageRetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05)
    assert p.delay_for(0) == pytest.approx(0.01)
    assert p.delay_for(1) == pytest.approx(0.02)
    assert p.delay_for(2) == pytest.approx(0.04)
    assert p.delay_for(3) == pytest.approx(0.05)  # capped


def test_fault_model_validation():
    with pytest.raises(ValueError):
        StorageFaultModel(fail_prob=1.0)
    with pytest.raises(ValueError):
        StorageFaultModel(windows=[(2.0, 1.0)])


def test_no_faults_zero_overhead():
    sim, storage = make_storage()
    finishes = []
    storage.write("a", 1, 1000, on_done=lambda: finishes.append(sim.now))
    sim.run()
    assert storage.stats.faults_injected == 0
    assert storage.stats.retry_time == 0.0
    assert finishes == [pytest.approx(0.021)]  # 20 ms + 1 ms transfer


def test_scheduled_op_fault_fails_first_attempt_only():
    faults = StorageFaultModel(
        fail_ops=(0,), retry=StorageRetryPolicy(base_delay=0.005)
    )
    sim, storage = make_storage(faults=faults)
    finishes = []
    storage.write("a", 1, 1000, on_done=lambda: finishes.append(sim.now))
    sim.run()
    assert storage.stats.faults_injected == 1
    # failed attempt (0.021) + backoff (0.005) + successful attempt (0.021)
    assert finishes == [pytest.approx(0.047)]
    assert storage.stats.retry_time == pytest.approx(0.026)
    assert storage.peek("a") == 1  # the write still lands


def test_window_fails_until_heal():
    faults = StorageFaultModel(
        windows=[(0.0, 0.1)],
        retry=StorageRetryPolicy(base_delay=0.01, multiplier=1.0),
    )
    sim, storage = make_storage(faults=faults)
    finishes = []
    storage.write("a", 1, 1000, on_done=lambda: finishes.append(sim.now))
    sim.run()
    assert storage.stats.faults_injected >= 3
    # the first attempt started after the window heals succeeds
    assert finishes and finishes[0] > 0.1
    assert storage.peek("a") == 1


def test_permanent_window_exhausts_retries():
    faults = StorageFaultModel(
        windows=[(0.0, None)],
        retry=StorageRetryPolicy(base_delay=0.001, max_attempts=5),
    )
    sim, storage = make_storage(faults=faults)
    with pytest.raises(StorageFaultError):
        storage.write("a", 1, 1000)


def test_probabilistic_faults_deterministic_per_seed():
    def run(seed):
        faults = StorageFaultModel(fail_prob=0.4)
        sim, storage = make_storage(faults=faults, seed=seed)
        finishes = []
        for i in range(10):
            storage.write(f"k{i}", i, 1000, on_done=lambda: finishes.append(sim.now))
        sim.run()
        return finishes, storage.stats.faults_injected

    assert run(3) == run(3)
    f1, n1 = run(3)
    f2, n2 = run(4)
    assert (f1, n1) != (f2, n2)
    assert n1 > 0 or n2 > 0


def test_faulted_device_stays_serialized():
    """Later ops queue behind the retries of earlier ones (one head)."""
    faults = StorageFaultModel(
        fail_ops=(0,), retry=StorageRetryPolicy(base_delay=0.005)
    )
    sim, storage = make_storage(faults=faults)
    finishes = []
    storage.write("a", 1, 1000, on_done=lambda: finishes.append(("a", sim.now)))
    storage.write("b", 2, 1000, on_done=lambda: finishes.append(("b", sim.now)))
    sim.run()
    assert [name for name, _ in finishes] == ["a", "b"]
    assert finishes[1][1] == pytest.approx(0.047 + 0.021)


def test_abort_pending_still_works_with_faults():
    faults = StorageFaultModel(fail_ops=(0,))
    sim, storage = make_storage(faults=faults)
    done = []
    storage.write("a", 1, 1000, on_done=lambda: done.append("a"))
    assert storage.abort_pending() == 1
    sim.run()
    assert done == []
    assert not storage.contains("a")
