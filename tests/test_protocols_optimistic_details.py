"""Detailed unit tests for optimistic logging's trickier machinery:
incarnation-tagged dependency vectors, orphan-message filtering, the
incarnation end table, and durable truncate markers."""

import pytest

from repro import build_system, crash_at, crash_on

from helpers import small_config


def optimistic_config(**kw):
    kw.setdefault("workload", "uniform")
    kw.setdefault("workload_params", {"hops": 25, "fanout": 2})
    return small_config(protocol="optimistic", recovery="optimistic", **kw)


class TestDependencyTracking:
    def test_dep_entries_carry_incarnations(self):
        system = build_system(optimistic_config())
        system.run()
        for node in system.nodes:
            for peer, interval in node.protocol.dep.items():
                assert isinstance(interval, tuple) and len(interval) == 2
                inc, idx = interval
                assert inc >= 0 and idx >= 0

    def test_dep_history_aligned_with_deliveries(self):
        system = build_system(optimistic_config())
        system.run()
        for node in system.nodes:
            assert len(node.protocol._dep_history) == node.app.delivered_count

    def test_dep_monotone_over_history(self):
        system = build_system(optimistic_config())
        system.run()
        node = max(system.nodes, key=lambda n: n.app.delivered_count)
        history = node.protocol._dep_history
        for earlier, later in zip(history, history[1:]):
            for peer, interval in earlier.items():
                assert later.get(peer, (-1, -1)) >= interval


class TestViolationPredicate:
    def test_violates_only_older_incarnations(self):
        from repro.protocols.optimistic import OptimisticLogging

        violates = OptimisticLogging._violates
        # dep on old incarnation beyond the bound: orphaned
        assert violates((0, 10), peer_inc=1, bound=5)
        # dep within the recovered prefix: fine
        assert not violates((0, 5), peer_inc=1, bound=5)
        # dep on the new incarnation: always fine
        assert not violates((1, 10), peer_inc=1, bound=5)
        assert not violates(None, peer_inc=1, bound=5)


class TestEndTable:
    def test_end_table_filled_by_announcements(self):
        system = build_system(optimistic_config(crashes=[crash_at(2, 0.03)]))
        system.run()
        inc = system.nodes[2].incarnation
        for node in system.nodes:
            if node.node_id != 2:
                ends = node.protocol._incarnation_ends.get(2, {})
                assert inc in ends

    def test_own_ends_persisted_across_second_crash(self):
        system = build_system(optimistic_config(
            crashes=[crash_at(2, 0.03), crash_at(2, 2.0)],
            workload_params={"hops": 60, "fanout": 2},
        ))
        result = system.run()
        assert result.consistent
        ends = system.nodes[2].protocol._own_ends
        # both recoveries recorded, reloaded from the stable log
        assert set(ends) == {1, 2}

    def test_dep_interval_stability_rules(self):
        system = build_system(optimistic_config())
        system.start()
        protocol = system.nodes[0].protocol
        protocol._peer_stable[1] = (0, 10)
        # same incarnation, within durable prefix
        assert protocol._dep_interval_stable(1, 0, 10)
        assert not protocol._dep_interval_stable(1, 0, 11)
        # ahead of our knowledge
        assert not protocol._dep_interval_stable(1, 1, 0)
        # older incarnation: needs the end table
        protocol._peer_stable[1] = (2, 10)
        assert not protocol._dep_interval_stable(1, 0, 3)  # bounds unknown
        protocol._incarnation_ends[1] = {1: 5, 2: 8}
        assert protocol._dep_interval_stable(1, 0, 5)
        assert not protocol._dep_interval_stable(1, 0, 6)
        system.sim.run()


class TestOrphanMessageFiltering:
    def test_stale_dependency_messages_discarded(self):
        """Messages whose dep vectors reach rolled-back intervals are
        dropped instead of re-orphaning the receiver."""
        system = build_system(optimistic_config(
            crashes=[crash_at(2, 0.03)],
            storage_op_latency=0.05,
        ))
        result = system.run()
        assert result.consistent
        # at least the machinery is exercised in cascade scenarios
        discarded = sum(
            node.protocol.orphan_messages_discarded for node in system.nodes
        )
        assert discarded >= 0  # presence depends on timing; consistency is the law

    def test_rollback_writes_truncate_marker_before_crash(self):
        system = build_system(optimistic_config(
            crashes=[crash_at(2, 0.03)],
            storage_op_latency=0.05,
        ))
        result = system.run()
        orphan_events = system.trace.select(category="recovery", action="orphan_rollback")
        if not orphan_events:
            pytest.skip("no orphan in this schedule")
        for event in orphan_events:
            node = system.nodes[event.node]
            entries = node.storage._data.get(f"log:optlog:{event.node}", [])
            assert any(entry[0] == "truncate" for entry in entries)


class TestCascadeTermination:
    @pytest.mark.parametrize("seed", range(4))
    def test_cascades_terminate_quickly(self, seed):
        system = build_system(optimistic_config(
            crashes=[crash_at(1, 0.03)],
            storage_op_latency=0.2,
            seed=seed,
        ))
        result = system.run()
        assert result.consistent
        # bounded rollbacks: no livelock (each node rolls back a handful
        # of times at most in a 6-node system)
        assert result.orphan_rollbacks < 30


class TestOrphanedCheckpointFallback:
    """A checkpoint can freeze state that depends on peer intervals the
    peers later roll back.  Restoring such an orphaned checkpoint used
    to livelock (restore -> re-orphan -> voluntary rollback -> the same
    checkpoint, forever); the store now retains the durable history and
    restart falls back to the newest line that satisfies every replayed
    truncate marker."""

    def test_checkpointed_crash_completes_without_livelock(self):
        config = optimistic_config(
            n=3, checkpoint_every=4, crashes=[crash_at(node=2, time=0.05)],
            sanitize=True,
        )
        system = build_system(config)
        result = system.run()
        assert result.consistent
        assert result.extra["sanitizer"]["clean"]
        assert all(e.complete for e in result.episodes)
        for node in system.nodes:
            assert node.is_live
        assert result.end_time < 60.0

    def test_orphaned_checkpoint_skipped_for_clean_line(self):
        config = optimistic_config(
            n=3, checkpoint_every=4, crashes=[crash_at(node=2, time=0.05)],
        )
        system = build_system(config)
        result = system.run()
        assert result.consistent
        skipped = system.trace.select(
            "recovery", action="orphan_checkpoint_skipped"
        )
        assert skipped, "fallback never exercised in the forcing scenario"
        for event in skipped:
            # always rewinds: the adopted line is strictly older
            assert event.details["to_id"] < event.details["from_id"]

    @pytest.mark.parametrize("seed", range(4))
    def test_cascading_rollbacks_with_checkpoints_converge(self, seed):
        config = optimistic_config(
            n=6, checkpoint_every=4, seed=seed, hops=25,
            crashes=[crash_at(node=2, time=0.05), crash_at(node=4, time=0.6)],
            sanitize=True,
        )
        result = build_system(config).run()
        assert result.consistent
        assert result.extra["sanitizer"]["clean"]
        assert all(e.complete for e in result.episodes)
