"""Validate the closed-form cost model against the simulator.

This is the repository's answer to the paper's closing wish for
"theoretical formulations" of the new yardsticks: each formula is
checked against actual simulation runs.
"""

import pytest

from repro import build_system, crash_at, crash_on
from repro.analysis.model import (
    HardwareModel,
    blocking_live_blocked_time,
    blocking_live_blocked_time_concurrent,
    blocking_recovery_messages,
    concurrent_recovery_duration,
    message_overhead_ratio,
    nonblocking_live_blocked_time,
    nonblocking_recovery_messages,
    recovery_duration,
)
from repro import SystemConfig


def paper_run(recovery, crashes, n=8, detection_delay=3.0):
    config = SystemConfig(
        name=f"model-{recovery}-{n}",
        n=n,
        protocol="fbl",
        protocol_params={"f": 2},
        recovery=recovery,
        workload="uniform",
        workload_params={"hops": 30, "fanout": 2},
        crashes=crashes,
        detection_delay=detection_delay,
        state_bytes=1_000_000,
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    return result


HW = HardwareModel(n=8)


class TestMessageCounts:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_blocking_count_exact(self, n):
        result = paper_run("blocking", [crash_at(node=1, time=0.05)], n=n)
        assert result.recovery_messages() == blocking_recovery_messages(n)

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_nonblocking_count_exact(self, n):
        result = paper_run("nonblocking", [crash_at(node=1, time=0.05)], n=n)
        assert result.recovery_messages() == nonblocking_recovery_messages(n)

    def test_overhead_ratio_bounded(self):
        """The new algorithm's message premium is a bounded constant
        factor (it tends to 2 as n grows now that the leader persists
        its round at the sequencer; tiny systems pay a bit more because
        the fixed sequencer/join costs dominate)."""
        ratios = [message_overhead_ratio(n) for n in range(3, 64)]
        assert all(1.0 < r < 3.5 for r in ratios)
        # asymptotically ~6(n-1)+c vs 3(n-1): ratio -> 2
        assert abs(ratios[-1] - 2.0) < 0.05
        # and the premium shrinks with n
        assert ratios == sorted(ratios, reverse=True)

    def test_concurrent_failure_count_within_tolerance(self):
        """With overlapping recoveries and restarts the formula counts a
        full repeated gather; partially-completed rounds make the
        simulation slightly cheaper.  Tolerance: 30 %."""
        result = paper_run(
            "nonblocking",
            [crash_at(node=3, time=0.05),
             crash_on(5, "net", "deliver", match_node=5,
                      match_details={"mtype": "depinfo_request"},
                      immediate=True)],
        )
        restarts = sum(e.gather_restarts for e in result.episodes)
        predicted = nonblocking_recovery_messages(
            8, recovering=2, gather_restarts=restarts
        )
        measured = result.recovery_messages()
        assert abs(predicted - measured) / measured < 0.3


class TestBlockedTime:
    def test_blocking_single_failure_blocked_time(self):
        result = paper_run("blocking", [crash_at(node=1, time=0.05)])
        predicted = blocking_live_blocked_time(HW)
        measured = result.mean_blocked_time(exclude=[1])
        assert abs(predicted - measured) / measured < 0.35

    def test_blocking_concurrent_failure_blocked_time(self):
        result = paper_run(
            "blocking",
            [crash_at(node=3, time=0.05),
             crash_on(5, "net", "deliver", match_node=5,
                      match_details={"mtype": "recovery_request"},
                      immediate=True)],
        )
        predicted = blocking_live_blocked_time_concurrent(HW)
        measured = result.mean_blocked_time(exclude=[3, 5])
        assert abs(predicted - measured) / measured < 0.1

    def test_nonblocking_is_exactly_zero(self):
        result = paper_run("nonblocking", [crash_at(node=1, time=0.05)])
        assert result.total_blocked_time == nonblocking_live_blocked_time(HW)


class TestDurations:
    @pytest.mark.parametrize("detection", [0.5, 3.0])
    def test_single_recovery_duration(self, detection):
        hw = HardwareModel(n=8, detection_delay=detection)
        result = paper_run(
            "nonblocking", [crash_at(node=1, time=0.05)],
            detection_delay=detection,
        )
        predicted = recovery_duration(hw)
        measured = result.recovery_durations()[0]
        assert abs(predicted - measured) < 0.05

    def test_concurrent_recovery_duration(self):
        result = paper_run(
            "nonblocking",
            [crash_at(node=3, time=0.05),
             crash_on(5, "net", "deliver", match_node=5,
                      match_details={"mtype": "depinfo_request"},
                      immediate=True)],
        )
        predicted = concurrent_recovery_duration(HW)
        measured = max(result.recovery_durations())
        assert abs(predicted - measured) < 0.1


class TestValidation:
    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            blocking_recovery_messages(1)
        with pytest.raises(ValueError):
            nonblocking_recovery_messages(8, recovering=0)

    def test_restore_time_composition(self):
        hw = HardwareModel(n=8, state_bytes=2_000_000,
                           storage_op_latency=0.01, storage_bandwidth=1e6)
        assert hw.restore_time == pytest.approx(0.01 + 2.0)
