"""Tests for the ready-made scenario builders (repro.experiments)."""

import pytest

from repro.experiments import (
    PAPER_DEFAULTS,
    failure_during_recovery,
    figure1,
    leader_failure,
    output_commit_scenario,
    paper_system,
    single_failure,
)


def fast(**kw):
    """Shrink the paper parameters so tests run in milliseconds."""
    kw.setdefault("detection_delay", 0.5)
    kw.setdefault("state_bytes", 100_000)
    return kw


def test_paper_defaults_match_the_evaluation():
    assert PAPER_DEFAULTS["n"] == 8
    assert PAPER_DEFAULTS["protocol_params"] == {"f": 2}
    assert PAPER_DEFAULTS["detection_delay"] == 3.0
    assert PAPER_DEFAULTS["state_bytes"] == 1_000_000


def test_single_failure_scenario():
    result = single_failure(**fast()).run()
    assert result.consistent
    assert len(result.recovery_durations()) == 1
    assert result.total_blocked_time == 0.0


def test_single_failure_blocking_variant():
    result = single_failure(recovery="blocking", **fast()).run()
    assert result.consistent
    assert result.total_blocked_time > 0.0


def test_failure_during_recovery_scenario():
    result = failure_during_recovery(**fast()).run()
    assert result.consistent
    assert len(result.recovery_durations()) == 2
    # the second failure no longer voids the gather (the paper's goto 4):
    # only the reply the dead process owed is invalidated
    assert sum(e.gather_restarts for e in result.episodes) == 0
    assert sum(e.reply_invalidations for e in result.episodes) >= 1


def test_leader_failure_scenario():
    result = leader_failure(**fast()).run()
    assert result.consistent
    leaders = {e.node for e in result.episodes if e.was_leader}
    assert len(leaders) >= 2


def test_figure1_failure_free():
    system = figure1(**fast())
    system.run()
    assert system.nodes[2].app.delivery_history == [(1, 0)]


def test_figure1_double_failure():
    system = figure1(crash_p=True, crash_q=True, **fast())
    result = system.run()
    assert result.consistent
    assert system.nodes[1].app.delivery_history == [(0, 0)]
    assert system.nodes[2].app.delivery_history == [(1, 0)]


def test_output_commit_scenario():
    result = output_commit_scenario(**fast()).run()
    assert result.consistent
    assert result.outputs_committed > 0


def test_output_commit_scenario_other_protocols():
    for protocol, recovery in [("pessimistic", "local"), ("coordinated", "coordinated")]:
        result = output_commit_scenario(
            protocol=protocol, recovery=recovery, **fast()
        ).run()
        assert result.consistent
        assert result.outputs_committed > 0


def test_overrides_flow_through():
    system = paper_system("custom", n=4, workload_params={"hops": 5, "fanout": 1},
                          **fast())
    assert system.config.n == 4
    result = system.run()
    assert result.consistent
