"""Tests for the sim-kernel profiler."""

from repro.experiments import single_failure
from repro.sim.kernel import Simulator
from repro.sim.profile import SimProfiler, handler_key, peak_rss_kb


def test_kernel_has_no_profiler_by_default():
    sim = Simulator()
    assert sim.profiler is None
    fired = []
    sim.schedule_at(1.0, lambda: fired.append(1), label="tick")
    sim.run()
    assert fired == [1]


def test_attach_detach_roundtrip():
    sim = Simulator()
    profiler = SimProfiler().attach(sim)
    assert sim.profiler is profiler
    profiler.detach(sim)
    assert sim.profiler is None


def test_profiler_counts_events_and_groups_by_label_prefix():
    sim = Simulator()
    profiler = SimProfiler().attach(sim)
    for i in range(5):
        sim.schedule_at(float(i), lambda: None, label=f"net.deliver:{i}")
    sim.schedule_at(6.0, lambda: None, label="stable_op")
    sim.run()
    assert profiler.events_fired == 6
    # ":"-suffixed labels collapse to their prefix
    assert profiler.handlers["net.deliver"].events == 5
    assert profiler.handlers["stable_op"].events == 1
    assert profiler.total_time >= 0.0
    assert profiler.events_per_sec() > 0.0


def test_handler_key_falls_back_to_qualname():
    sim = Simulator()

    def my_handler() -> None:
        pass

    handle = sim.schedule_at(1.0, my_handler)
    key = handler_key(handle._event)
    assert "my_handler" in key


def test_heap_high_water_tracked():
    sim = Simulator()
    profiler = SimProfiler().attach(sim)
    for i in range(10):
        sim.schedule_at(float(i), lambda: None, label="tick")
    assert profiler.heap_high_water == 10
    sim.run()
    assert profiler.heap_high_water == 10


def test_snapshot_shape_and_hot_handlers():
    system = single_failure(recovery="nonblocking", profile=True)
    result = system.run()
    snap = result.extra["profile"]
    for key in ("events_fired", "total_handler_time", "wall_elapsed",
                "events_per_sec", "heap_high_water", "peak_rss_kb", "handlers"):
        assert key in snap, f"missing {key}"
    assert snap["events_fired"] == result.extra["events_processed"]
    assert snap["events_per_sec"] > 0
    assert snap["heap_high_water"] > 0
    assert snap["peak_rss_kb"] > 0
    hot = system.profiler.hot_handlers(limit=3)
    assert 1 <= len(hot) <= 3
    # hottest first
    times = [stats.total_time for _, stats in hot]
    assert times == sorted(times, reverse=True)


def test_peak_rss_positive_on_this_platform():
    assert peak_rss_kb() > 0


def test_profiler_exceptions_still_accounted():
    sim = Simulator()
    profiler = SimProfiler().attach(sim)

    def boom() -> None:
        raise RuntimeError("handler failure")

    sim.schedule_at(1.0, boom, label="boom")
    try:
        sim.run()
    except RuntimeError:
        pass
    assert profiler.events_fired == 1
    assert profiler.handlers["boom"].events == 1
