"""Unit tests for topologies."""

import pytest

from repro.net.latency import ConstantLatency
from repro.net.topology import Topology, full_mesh, ring, star


def test_full_mesh_connects_all_pairs():
    topo = full_mesh(4)
    for a in range(4):
        for b in range(4):
            assert topo.connected(a, b) == (a != b)


def test_full_mesh_neighbor_count():
    topo = full_mesh(5)
    for node in range(5):
        assert len(topo.neighbors(node)) == 4


def test_ring_bidirectional():
    topo = ring(4)
    assert topo.connected(0, 1)
    assert topo.connected(1, 0)
    assert topo.connected(3, 0)
    assert not topo.connected(0, 2)


def test_ring_unidirectional():
    topo = ring(4, bidirectional=False)
    assert topo.connected(0, 1)
    assert not topo.connected(1, 0)


def test_star_hub_reaches_spokes():
    topo = star(5, hub=2)
    for spoke in (0, 1, 3, 4):
        assert topo.connected(2, spoke)
        assert topo.connected(spoke, 2)
    assert not topo.connected(0, 1)


def test_star_rejects_bad_hub():
    with pytest.raises(ValueError):
        star(3, hub=3)


def test_custom_links_validated():
    with pytest.raises(ValueError):
        Topology([0, 1], links=[(0, 2)])
    with pytest.raises(ValueError):
        Topology([0, 1], links=[(0, 0)])


def test_link_latency_override():
    topo = full_mesh(3)
    model = ConstantLatency(0.5)
    topo.set_link_latency(0, 1, model)
    assert topo.link_latency(0, 1) is model
    assert topo.link_latency(1, 0) is None


def test_link_latency_override_requires_link():
    topo = ring(4)
    with pytest.raises(ValueError):
        topo.set_link_latency(0, 2, ConstantLatency(0.1))


def test_links_sorted_deterministic():
    topo = full_mesh(3)
    assert topo.links() == sorted(topo.links())


def test_len_is_node_count():
    assert len(full_mesh(7)) == 7


def test_empty_topology_rejected():
    with pytest.raises(ValueError):
        Topology([])
