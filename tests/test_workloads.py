"""Unit tests for workload generators.

The crucial property is *purity*: calling a workload twice with the same
arguments must return the same sends -- the liveness of message-logging
replay depends on it.
"""

import pytest

from repro.workloads import (
    AllToAllWorkload,
    ClientServerWorkload,
    PingPongWorkload,
    TokenRingWorkload,
    UniformWorkload,
    make_workload,
)

ALL_NAMES = ["token_ring", "uniform", "client_server", "ping_pong", "all_to_all"]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_initial_sends_pure(name):
    w = make_workload(name)
    assert w.initial_sends(0, 6) == w.initial_sends(0, 6)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_on_deliver_pure(name):
    w = make_workload(name)
    payloads = {
        "token_ring": {"token": 0, "hops": 3},
        "uniform": {"chain": "0.0", "hops": 3},
        "client_server": {"op": "reply", "client": 1, "remaining": 3},
        "ping_pong": {"hops": 3},
        "all_to_all": {"origin": 0, "hops": 3},
    }
    a = w.on_deliver(1, 6, 0, 0, payloads[name])
    b = w.on_deliver(1, 6, 0, 0, payloads[name])
    assert a == b


@pytest.mark.parametrize("name", ALL_NAMES)
def test_hop_exhaustion_quiesces(name):
    w = make_workload(name)
    payloads = {
        "token_ring": {"token": 0, "hops": 0},
        "uniform": {"chain": "0.0", "hops": 0},
        "client_server": {"op": "reply", "client": 1, "remaining": 1},
        "ping_pong": {"hops": 0},
        "all_to_all": {"origin": 0, "hops": 0},
    }
    assert w.on_deliver(1, 6, 0, 0, payloads[name]) == []


def test_token_ring_forwards_to_next():
    w = TokenRingWorkload(hops=5)
    sends = w.on_deliver(2, 4, 0, 1, {"token": 0, "hops": 5})
    assert len(sends) == 1
    assert sends[0].dst == 3
    assert sends[0].payload["hops"] == 4


def test_token_ring_wraps_around():
    w = TokenRingWorkload(hops=5)
    sends = w.on_deliver(3, 4, 0, 2, {"token": 0, "hops": 5})
    assert sends[0].dst == 0


def test_token_ring_multiple_tokens_start_spread():
    w = TokenRingWorkload(hops=5, tokens=2)
    origins = [node for node in range(8) if w.initial_sends(node, 8)]
    assert len(origins) == 2


def test_uniform_never_sends_to_self():
    w = UniformWorkload(hops=8, fanout=3)
    for node in range(6):
        for send in w.initial_sends(node, 6):
            assert send.dst != node
        sends = w.on_deliver(node, 6, 0, (node + 1) % 6, {"chain": "x", "hops": 5})
        for send in sends:
            assert send.dst != node


def test_client_server_request_reply_cycle():
    w = ClientServerWorkload(requests=2, server=0)
    first = w.initial_sends(1, 4)
    assert first[0].dst == 0
    reply = w.on_deliver(0, 4, 0, 1, first[0].payload)
    assert reply[0].dst == 1
    assert reply[0].payload["op"] == "reply"
    second = w.on_deliver(1, 4, 0, 0, reply[0].payload)
    assert second[0].payload["remaining"] == 1
    done = w.on_deliver(1, 4, 1, 0, {"op": "reply", "client": 1, "remaining": 1})
    assert done == []


def test_client_server_server_has_no_initial_sends():
    w = ClientServerWorkload(requests=2, server=0)
    assert w.initial_sends(0, 4) == []


def test_ping_pong_pairs():
    w = PingPongWorkload(hops=4)
    assert w.initial_sends(0, 4)[0].dst == 1
    assert w.initial_sends(1, 4) == []
    assert w.initial_sends(2, 4)[0].dst == 3
    back = w.on_deliver(1, 4, 0, 0, {"hops": 4})
    assert back[0].dst == 0


def test_ping_pong_odd_node_idle():
    w = PingPongWorkload(hops=4)
    assert w.initial_sends(4, 5) == []


def test_all_to_all_initial_burst():
    w = AllToAllWorkload(hops=3)
    sends = w.initial_sends(0, 5)
    assert sorted(s.dst for s in sends) == [1, 2, 3, 4]


def test_all_to_all_thinning_burst_is_full_or_empty():
    w = AllToAllWorkload(hops=3)
    sends = w.on_deliver(2, 5, 0, 1, {"origin": 1, "hops": 2})
    assert len(sends) in (0, 4)


def test_make_workload_rejects_unknown():
    with pytest.raises(ValueError):
        make_workload("bogus")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_seed_changes_behaviour_only_for_randomized(name):
    a = make_workload(name, seed=1)
    b = make_workload(name, seed=2)
    # deterministic topologies ignore the seed; hash-based ones may not.
    # Either way both must still be internally pure.
    assert a.initial_sends(0, 6) == a.initial_sends(0, 6)
    assert b.initial_sends(0, 6) == b.initial_sends(0, 6)


def test_parameter_validation():
    with pytest.raises(ValueError):
        TokenRingWorkload(hops=-1)
    with pytest.raises(ValueError):
        TokenRingWorkload(tokens=0)
    with pytest.raises(ValueError):
        UniformWorkload(hops=-1)
    with pytest.raises(ValueError):
        ClientServerWorkload(requests=-1)
    with pytest.raises(ValueError):
        AllToAllWorkload(hops=-1)
