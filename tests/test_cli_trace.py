"""Tests for the ``repro trace`` subcommand and the run observability flags."""

import json

import pytest

from repro.cli import main

RUN_ARGS = [
    "run", "--n", "4", "--hops", "15",
    "--detection-delay", "0.5", "--state-bytes", "100000",
    "--crash", "2@0.03",
]


@pytest.fixture()
def trace_path(tmp_path, capsys):
    """A recorded crash-run trace on disk (spans implied by --trace-out)."""
    path = tmp_path / "run.jsonl"
    assert main(RUN_ARGS + ["--trace-out", str(path)]) == 0
    capsys.readouterr()  # swallow the run summary
    return str(path)


class TestRunFlags:
    def test_profile_flag_prints_host_costs(self, capsys):
        assert main(RUN_ARGS + ["--profile"]) == 0
        out = capsys.readouterr().out
        assert "events/s" in out
        assert "peak RSS" in out

    def test_metrics_flag_prints_registry(self, capsys):
        assert main(RUN_ARGS + ["--metrics"]) == 0
        out = capsys.readouterr().out
        assert "net.messages_sent" in out
        assert "recovery.episode_duration" in out

    def test_trace_out_writes_jsonl(self, trace_path):
        with open(trace_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        assert len(lines) > 100
        record = json.loads(lines[0])
        assert {"time", "category", "node", "action"} <= set(record)
        # --trace-out implies spans, so span events must be present
        assert any(json.loads(l)["category"] == "span" for l in lines)


class TestTraceCommand:
    def test_default_summary(self, trace_path, capsys):
        assert main(["trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "node.crash" in out
        assert "spans" in out

    def test_filters_restrict_events(self, trace_path, capsys):
        assert main(["trace", trace_path, "--node", "2",
                     "--category", "node", "--summary"]) == 0
        out = capsys.readouterr().out
        assert "node.crash" in out
        assert "net.send" not in out

    def test_tail_prints_last_events(self, trace_path, capsys):
        assert main(["trace", trace_path, "--tail", "5"]) == 0
        out = capsys.readouterr().out
        assert len([l for l in out.splitlines() if l and l[0].isdigit()]) == 5

    def test_span_tree(self, trace_path, capsys):
        assert main(["trace", trace_path, "--spans", "--node", "2"]) == 0
        out = capsys.readouterr().out
        assert "recovery.episode" in out
        assert "recovery.detect" in out

    def test_critical_path_attributes_recovery(self, trace_path, capsys):
        assert main(["trace", trace_path, "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "node 2: recovery" in out
        assert "detection" in out
        assert "bounded by:" in out

    def test_timeline_rendered_from_file(self, trace_path, capsys):
        assert main(["trace", trace_path, "--timeline"]) == 0
        assert "legend:" in capsys.readouterr().out

    def test_chrome_export_is_valid_trace_event_json(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "run.chrome.json"
        assert main(["trace", trace_path, "--chrome-out", str(out_path)]) == 0
        capsys.readouterr()
        with open(out_path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        events = doc["traceEvents"]
        assert events
        phases = {e["ph"] for e in events}
        assert "X" in phases  # closed spans
        assert "M" in phases  # metadata (named node tracks)
        assert "i" in phases  # crash/recovered instants
        complete = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in complete)
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "node 2" in names

    def test_missing_file_is_an_error(self, capsys):
        assert main(["trace", "/nonexistent/trace.jsonl"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_trace_names_the_line(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"time": 0.0, "category": "node", "node": 0, "action": "start"}\n'
            '{"time": "soon", "category": "node", "node": 0, "action": "tick"}\n'
        )
        assert main(["trace", str(path)]) == 1
        err = capsys.readouterr().err
        assert "line 2" in err

    def test_critical_path_without_spans_explains(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        path.write_text(
            '{"time": 0.0, "category": "node", "node": 0, "action": "start"}\n'
        )
        assert main(["trace", str(path), "--critical-path"]) == 0
        assert "--spans" in capsys.readouterr().out
