"""Test configuration.

Ensures ``src/`` is importable even when the package has not been
installed (offline environments without the ``wheel`` package cannot run
PEP 517 editable installs; ``python setup.py develop`` works, but this
fallback makes ``pytest`` self-sufficient either way).
"""

import os
import sys

_TESTS = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_TESTS), "src")
for _path in (_SRC, _TESTS):
    if _path not in sys.path:
        sys.path.insert(0, _path)
