"""Generator-level coverage for :mod:`repro.workloads.generators`.

Complements ``test_workloads.py`` (single-call purity) with the
properties the paper's replay argument leans on at run scale:

* **fixed-seed determinism** -- two fresh instances built with the same
  seed regenerate identical send *sequences* when walked through a
  whole hop chain, not just one call;
* **distribution shape** -- hash-based peer picks are spread over every
  peer (no self-sends, no starved destination) and the all-to-all
  thinning coin lands near its designed 1/(n-1) rate;
* **size accounting** -- every generated send carries the configured
  ``body_bytes`` (output reports excepted, which are fixed-size);
* **message-count parity** -- two full simulator runs from an identical
  config produce identical network message counts and state digests.
"""

from __future__ import annotations

import pytest

from repro.procs.process import OUTPUT_DST
from repro.workloads.generators import (
    AllToAllWorkload,
    ClientServerWorkload,
    PingPongWorkload,
    TokenRingWorkload,
    UniformWorkload,
    make_workload,
)

from .helpers import run_small

ALL_NAMES = ["token_ring", "uniform", "client_server", "ping_pong", "all_to_all"]


def _walk_chain(workload, n_nodes, steps=64):
    """Deterministically walk one causal chain through the workload.

    Starts from node 0's first initial send and keeps delivering the
    first resulting send, recording ``(dst, payload)`` at each hop.
    Returns the recorded trajectory; length is bounded by ``steps``.
    """
    trajectory = []
    sender, rsn = 0, 0
    pending = None
    for node in range(n_nodes):
        sends = workload.initial_sends(node, n_nodes)
        if sends:
            sender, pending = node, sends[0]
            break
    while pending is not None and len(trajectory) < steps:
        trajectory.append((pending.dst, dict(pending.payload)))
        nxt = workload.on_deliver(
            pending.dst, n_nodes, rsn, sender, pending.payload
        )
        nxt = [s for s in nxt if s.dst != OUTPUT_DST]
        sender = pending.dst
        pending = nxt[0] if nxt else None
        rsn += 1
    return trajectory


# ---------------------------------------------------------------------------
# fixed-seed determinism
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_NAMES)
def test_fresh_instances_same_seed_walk_identically(name):
    a = make_workload(name, seed=7)
    b = make_workload(name, seed=7)
    walk_a = _walk_chain(a, n_nodes=6)
    walk_b = _walk_chain(b, n_nodes=6)
    assert walk_a == walk_b
    assert walk_a, "walk must make progress"


def test_uniform_seed_changes_peer_stream():
    # hash-based routing must actually depend on the seed, otherwise
    # "seed" sweeps in the experiments are no-ops
    walks = {
        seed: _walk_chain(UniformWorkload(hops=40, seed=seed), n_nodes=8)
        for seed in range(6)
    }
    distinct = {tuple((dst, p["hops"]) for dst, p in walk) for walk in walks.values()}
    assert len(distinct) > 1


@pytest.mark.parametrize("name", ALL_NAMES)
def test_initial_sends_identical_across_instances(name):
    a = make_workload(name, seed=3)
    b = make_workload(name, seed=3)
    for node in range(8):
        assert a.initial_sends(node, 8) == b.initial_sends(node, 8)


# ---------------------------------------------------------------------------
# distribution shape
# ---------------------------------------------------------------------------

def test_uniform_peer_picks_cover_all_peers():
    n = 8
    w = UniformWorkload(hops=4, seed=0)
    counts = {dst: 0 for dst in range(n) if dst != 3}
    draws = 600
    for i in range(draws):
        sends = w.on_deliver(3, n, i, i % n, {"chain": f"c{i}", "hops": 4})
        forwarded = [s for s in sends if s.dst != OUTPUT_DST]
        assert len(forwarded) == 1
        assert forwarded[0].dst != 3
        counts[forwarded[0].dst] += 1
    expected = draws / (n - 1)
    for dst, count in counts.items():
        # loose 3-sigma-ish band: uniform hashing should not starve or
        # flood any single peer
        assert 0.5 * expected < count < 1.5 * expected, (dst, count)


def test_all_to_all_thinning_rate_near_design():
    n = 6
    w = AllToAllWorkload(hops=4, seed=0)
    draws = 800
    bursts = 0
    for i in range(draws):
        sends = w.on_deliver(
            i % n, n, i, (i + 1) % n, {"origin": (i + 1) % n, "hops": 3}
        )
        assert len(sends) in (0, n - 1)
        if sends:
            bursts += 1
    rate = bursts / draws
    design = 1 / (n - 1)
    assert 0.5 * design < rate < 2.0 * design


@pytest.mark.parametrize("name", ALL_NAMES)
def test_body_bytes_propagates_to_every_send(name):
    w = make_workload(name, body_bytes=999)
    payloads = {
        "token_ring": {"token": 0, "hops": 3},
        "uniform": {"chain": "0.0", "hops": 3},
        "client_server": {"op": "request", "client": 1, "remaining": 3},
        "ping_pong": {"hops": 3},
        "all_to_all": {"origin": 0, "hops": 3},
    }
    sends = []
    for node in range(6):
        sends.extend(w.initial_sends(node, 6))
    # client_server: deliver at the server so a reply is generated
    sends.extend(w.on_deliver(0, 6, 0, 1, payloads[name]))
    app_sends = [s for s in sends if s.dst != OUTPUT_DST]
    assert app_sends
    assert all(s.body_bytes == 999 for s in app_sends)


def test_uniform_output_every_emits_fixed_size_reports():
    w = UniformWorkload(hops=4, output_every=2, seed=0)
    reports = []
    for rsn in range(10):
        sends = w.on_deliver(1, 6, rsn, 0, {"chain": "c", "hops": 3})
        reports.extend(s for s in sends if s.dst == OUTPUT_DST)
    assert len(reports) == 5  # every second delivery
    assert all(r.body_bytes == 32 for r in reports)


def test_client_server_bounded_request_count():
    w = ClientServerWorkload(requests=3, server=0)
    exchanges = 0
    payload = w.initial_sends(1, 4)[0].payload
    while True:
        reply = w.on_deliver(0, 4, exchanges, 1, payload)
        reply = [s for s in reply if s.dst != OUTPUT_DST]
        exchanges += 1
        nxt = w.on_deliver(1, 4, exchanges, 0, reply[0].payload)
        if not nxt:
            break
        payload = nxt[0].payload
        assert exchanges < 10, "client/server loop failed to terminate"
    assert exchanges == 3


def test_token_ring_chain_length_matches_hops():
    w = TokenRingWorkload(hops=12, tokens=1)
    walk = _walk_chain(w, n_nodes=5, steps=100)
    # initial send + `hops` forwards
    assert len(walk) == 13
    assert walk[-1][1]["hops"] == 0


def test_ping_pong_alternates_between_partners():
    w = PingPongWorkload(hops=6)
    walk = _walk_chain(w, n_nodes=4, steps=100)
    assert len(walk) == 7
    assert [dst for dst, _ in walk] == [1, 0, 1, 0, 1, 0, 1]


# ---------------------------------------------------------------------------
# message-count parity across identical full runs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "workload,params",
    [
        ("uniform", {"hops": 16, "fanout": 2}),
        ("token_ring", {"hops": 16}),
        ("client_server", {"requests": 4}),
        ("all_to_all", {"hops": 6}),
    ],
)
def test_identical_runs_have_identical_message_counts(workload, params):
    a = run_small(workload=workload, workload_params=dict(params), seed=11)
    b = run_small(workload=workload, workload_params=dict(params), seed=11)
    assert a.network.messages == b.network.messages
    assert sum(a.network.messages.values()) > 0
    assert a.digests == b.digests
    assert a.end_time == b.end_time


def test_different_seed_changes_timing_but_stays_consistent():
    a = run_small(workload="uniform", seed=1)
    b = run_small(workload="uniform", seed=2)
    assert a.consistent and b.consistent
    # different network-jitter streams: the runs are distinct objects
    assert (a.end_time, sum(a.network.messages.values())) != (
        b.end_time,
        sum(b.network.messages.values()),
    ) or a.digests != b.digests
