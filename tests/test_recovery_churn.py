"""Recovery under churn: epochs, leader handoff, and resumable gathers.

The paper's recovery algorithm assumed the leader survives its own
gather.  These tests pin the churn-hardening on top of it:

* a leader crash mid-gather triggers a view-change-style handoff -- the
  successor adopts the persisted round state from the sequencer and
  resumes, instead of restarting from scratch (the legacy
  ``nonblocking-restart`` manager pins the seed's restart behaviour);
* cascading failures (k >= 3 overlapping crashes) and partitions healing
  mid-gather still converge for every recovery manager;
* the ``recovery-epoch`` sanitizer invariant catches an epoch-reuse
  mutant, both end-to-end and on a hand-fed trace.
"""

import pytest

from repro import build_system, crash_at, crash_on
from repro.core.config import FaultConfig

from helpers import small_config
from test_sanitizer import harness


def run_system(config):
    system = build_system(config)
    result = system.run()
    return system, result


def leader_crash_mid_gather(recovery):
    """Node 2 leads, accepts one depinfo reply, then dies; node 4 is
    also recovering and must take over the round."""
    return small_config(
        n=6, recovery=recovery, hops=25,
        crashes=[
            crash_at(node=2, time=0.02),
            crash_at(node=4, time=0.03),
            crash_on(2, "recovery", "depinfo_reply_accepted", match_node=2,
                     immediate=True),
        ],
    )


class TestLeaderHandoff:
    def test_leader_crash_mid_gather_hands_off_and_resumes(self):
        system, result = run_system(leader_crash_mid_gather("nonblocking"))
        assert result.consistent
        final_by_node = {e.node: e for e in result.episodes}
        assert final_by_node[2].complete and final_by_node[4].complete
        assert sum(e.leader_handoffs for e in result.episodes) >= 1
        assert sum(e.rounds_resumed for e in result.episodes) >= 1
        handoffs = system.trace.select("recovery", action="leader_handoff")
        assert handoffs, "no leader_handoff event traced"
        details = handoffs[0].details
        assert details["from_epoch"] < details["epoch"]
        assert len(details["adopted_replies"]) >= 1

    def test_handoff_does_not_rerequest_adopted_replies(self):
        """The resumed round only asks for what the dead leader had not
        yet collected."""
        system, result = run_system(leader_crash_mid_gather("nonblocking"))
        handoff = system.trace.select("recovery", action="leader_handoff")[0]
        adopted = len(handoff.details["adopted_replies"])
        requests = system.trace.count("recovery", "depinfo_request_received")
        # a full restart would re-ask every member of both rounds; with
        # adoption the second round saves exactly the adopted replies
        assert adopted >= 1
        assert requests <= 2 * (6 - 1) - adopted

    def test_leader_crash_mid_gather_restarts_in_legacy_variant(self):
        system, result = run_system(
            leader_crash_mid_gather("nonblocking-restart")
        )
        assert result.consistent
        final_by_node = {e.node: e for e in result.episodes}
        assert final_by_node[2].complete and final_by_node[4].complete
        assert sum(e.leader_handoffs for e in result.episodes) == 0
        assert sum(e.rounds_resumed for e in result.episodes) == 0


CASCADE_MANAGERS = [
    ("fbl", "nonblocking"),
    ("fbl", "blocking"),
    ("fbl", "nonblocking-restart"),
    ("manetho", "nonblocking"),
]


class TestCascadesAndPartitions:
    @pytest.mark.parametrize("protocol,recovery", CASCADE_MANAGERS,
                             ids=[f"{p}-{r}" for p, r in CASCADE_MANAGERS])
    def test_cascading_failures_recover(self, protocol, recovery):
        """k = 3 crashes, each landing inside the previous recovery."""
        config = small_config(
            n=8, protocol=protocol, recovery=recovery, f=3, hops=30,
            crashes=[
                crash_at(node=1, time=0.02),
                crash_at(node=3, time=0.25),
                crash_at(node=5, time=0.48),
            ],
        )
        system, result = run_system(config)
        assert result.consistent
        assert len(result.recovery_durations()) == 3
        for node in system.nodes:
            assert node.is_live

    @pytest.mark.parametrize("recovery",
                             ["nonblocking", "blocking", "nonblocking-restart"])
    def test_partition_healing_mid_gather(self, recovery):
        """The gather starts split from half the members and must finish
        once the partition heals (reliable transport carries the
        retries)."""
        config = small_config(
            n=6, recovery=recovery, hops=25,
            crashes=[crash_at(node=2, time=0.02)],
            transport="reliable",
            transport_params={"max_retries": 30},
            # node 6 is the sequencer; heal lands mid-gather (detection
            # delay is 0.5, so recovery starts around t=0.52)
            faults=FaultConfig(partitions=[([[0, 1, 2, 6], [3, 4, 5]], 0.7)]),
        )
        system, result = run_system(config)
        assert result.consistent
        assert len(result.recovery_durations()) == 1
        for node in system.nodes:
            assert node.is_live


class TestRecoveryEpochSanitizer:
    def test_frozen_epoch_mutant_caught_end_to_end(self, monkeypatch):
        """A manager that reuses the same epoch for every episode must be
        flagged by the recovery-epoch invariant."""
        from repro.recovery.base import RecoveryManager

        def frozen(self, epoch):
            self.epoch = 1  # mutant: epochs never advance
            self.trace("epoch_begin", epoch=1)

        monkeypatch.setattr(RecoveryManager, "begin_epoch", frozen)
        config = small_config(
            n=4, recovery="blocking", hops=20, sanitize=True,
            crashes=[crash_at(node=2, time=0.02), crash_at(node=2, time=4.0)],
        )
        system, result = run_system(config)
        report = result.extra["sanitizer"]
        assert not report["clean"]
        assert any(
            v["invariant"] == "recovery-epoch" for v in report["violations"]
        )

    def test_epoch_regression_caught_on_fed_trace(self):
        trace, sanitizer = harness()
        trace.record(0.10, "node", 2, "crash")
        trace.record(0.30, "node", 2, "restored",
                     checkpoint_id=1, delivered=0, incarnation=1)
        trace.record(0.30, "recovery", 2, "epoch_begin", epoch=1)
        trace.record(0.40, "node", 2, "recovered", delivered=0, incarnation=1)
        trace.record(0.50, "node", 2, "crash")
        trace.record(0.70, "node", 2, "restored",
                     checkpoint_id=1, delivered=0, incarnation=2)
        trace.record(0.70, "recovery", 2, "epoch_begin", epoch=1)
        assert not sanitizer.clean
        violation = sanitizer.violations[0]
        assert violation.invariant == "recovery-epoch"
        assert violation.node == 2
        assert violation.time == 0.70

    def test_action_outside_current_epoch_caught_on_fed_trace(self):
        trace, sanitizer = harness()
        trace.record(0.10, "node", 2, "crash")
        trace.record(0.30, "node", 2, "restored",
                     checkpoint_id=1, delivered=0, incarnation=1)
        trace.record(0.30, "recovery", 2, "epoch_begin", epoch=3)
        # the gather claims an epoch the node never entered
        trace.record(0.31, "recovery", 2, "gather_start", epoch=2)
        assert not sanitizer.clean
        assert sanitizer.violations[0].invariant == "recovery-epoch"
