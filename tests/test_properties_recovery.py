"""Property-based tests: recovery correctness under random schedules.

For randomly generated workload parameters and crash schedules (within
the f-failure budget), every run must end with all processes live, the
oracle clean, and -- for FBL with both recovery algorithms -- identical
final digests to a failure-free execution wherever the comparison is
meaningful (Figure-1-style chains).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_system, crash_at

from helpers import small_config


def fbl_config(n, f, recovery, seed, crashes, workload, hops):
    return small_config(
        n=n,
        f=f,
        recovery=recovery,
        seed=seed,
        workload=workload,
        workload_params={"hops": hops, "fanout": 2}
        if workload == "uniform"
        else {"hops": hops},
        crashes=crashes,
    )


schedules = st.builds(
    lambda victims, times: [
        crash_at(node=v, time=t) for v, t in zip(victims, sorted(times))
    ],
    victims=st.lists(
        st.integers(min_value=0, max_value=5), min_size=1, max_size=2, unique=True
    ),
    times=st.lists(
        st.floats(min_value=0.005, max_value=0.3), min_size=2, max_size=2
    ),
)


@settings(max_examples=25, deadline=None)
@given(
    schedule=schedules,
    seed=st.integers(min_value=0, max_value=10_000),
    recovery=st.sampled_from(["nonblocking", "blocking"]),
    workload=st.sampled_from(["uniform", "token_ring"]),
    hops=st.integers(min_value=5, max_value=40),
)
def test_fbl_recovery_is_always_consistent(schedule, seed, recovery, workload, hops):
    config = fbl_config(
        n=6, f=2, recovery=recovery, seed=seed,
        crashes=schedule, workload=workload, hops=hops,
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent, result.oracle_violations[:3]
    assert all(node.is_live for node in system.nodes)
    # every crash episode eventually completed
    open_episodes = [e for e in result.episodes if not e.complete]
    assert not open_episodes


@settings(max_examples=15, deadline=None)
@given(
    schedule=schedules,
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_nonblocking_never_blocks_anyone(schedule, seed):
    config = fbl_config(
        n=6, f=2, recovery="nonblocking", seed=seed,
        crashes=schedule, workload="uniform", hops=20,
    )
    result = build_system(config).run()
    assert result.total_blocked_time == 0.0


@settings(max_examples=15, deadline=None)
@given(
    victim=st.integers(min_value=0, max_value=4),
    time=st.floats(min_value=0.005, max_value=0.2),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_pessimistic_single_crash_consistent(victim, time, seed):
    config = small_config(
        n=5, protocol="pessimistic", recovery="local", seed=seed,
        crashes=[crash_at(node=victim, time=time)],
        workload="uniform", workload_params={"hops": 15, "fanout": 2},
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    assert all(node.is_live for node in system.nodes)


@settings(max_examples=15, deadline=None)
@given(
    victim=st.integers(min_value=0, max_value=4),
    time=st.floats(min_value=0.005, max_value=0.2),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_optimistic_single_crash_consistent(victim, time, seed):
    config = small_config(
        n=5, protocol="optimistic", recovery="optimistic", seed=seed,
        crashes=[crash_at(node=victim, time=time)],
        workload="uniform", workload_params={"hops": 15, "fanout": 2},
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent, result.oracle_violations[:3]
    assert all(node.is_live for node in system.nodes)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    hops=st.integers(min_value=5, max_value=30),
)
def test_failure_free_digests_are_seed_stable(seed, hops):
    """Two identical systems produce identical executions."""
    def build():
        return build_system(fbl_config(
            n=5, f=2, recovery="nonblocking", seed=seed,
            crashes=[], workload="uniform", hops=hops,
        ))

    a, b = build().run(), build().run()
    assert a.digests == b.digests
    assert a.end_time == b.end_time


@settings(max_examples=10, deadline=None)
@given(
    victim=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_crashed_node_digest_matches_failure_free_prefix_chain(victim, seed):
    """For the causal-chain workload (token ring), the recovered system
    reaches exactly the failure-free final state: nothing visible is
    lost, because every message is an antecedent of the chain's tail."""
    def config(crashes):
        return small_config(
            n=5, f=2, recovery="nonblocking", seed=seed,
            workload="token_ring", workload_params={"hops": 30, "tokens": 1},
            crashes=crashes,
        )

    clean = build_system(config([]))
    clean_result = clean.run()
    crashed = build_system(config([crash_at(node=victim, time=0.002)]))
    crashed_result = crashed.run()
    assert crashed_result.consistent
    for node_id, digest in clean_result.digests.items():
        assert crashed_result.digests[node_id] == digest
