"""Tests for trace export/import (JSONL)."""

import io

from repro import build_system, crash_at
from repro.analysis.trace_io import (
    diff_counters,
    dump_trace,
    event_from_dict,
    event_to_dict,
    load_trace,
)
from repro.sim.trace import TraceEvent, TraceRecorder

from helpers import small_config


def test_event_round_trip():
    event = TraceEvent(1.25, "net", 3, "send", {"dst": 4, "size": 100})
    assert event_from_dict(event_to_dict(event)) == event


def test_dump_and_load_stream():
    trace = TraceRecorder()
    trace.record(0.5, "node", 1, "crash")
    trace.record(1.0, "node", 1, "recovered", delivered=5)
    buffer = io.StringIO()
    assert dump_trace(trace, buffer) == 2
    buffer.seek(0)
    loaded = load_trace(buffer)
    assert len(loaded) == 2
    assert loaded.events[1].details == {"delivered": 5}
    assert loaded.count("node", "crash") == 1


def test_dump_and_load_file(tmp_path):
    system = build_system(small_config(n=4, hops=10, crashes=[crash_at(2, 0.02)]))
    system.run()
    path = str(tmp_path / "trace.jsonl")
    count = dump_trace(system.trace, path)
    assert count == len(system.trace)
    loaded = load_trace(path)
    assert len(loaded) == len(system.trace)
    assert loaded.counters == system.trace.counters


def test_loaded_trace_renders_timeline():
    from repro.analysis.timeline import render_timeline

    system = build_system(small_config(n=4, hops=10, crashes=[crash_at(2, 0.02)]))
    system.run()
    buffer = io.StringIO()
    dump_trace(system.trace, buffer)
    buffer.seek(0)
    loaded = load_trace(buffer)
    assert render_timeline(loaded) == render_timeline(system.trace)


def test_blank_lines_ignored():
    loaded = load_trace(io.StringIO("\n\n"))
    assert len(loaded) == 0


def test_diff_counters():
    a, b = TraceRecorder(), TraceRecorder()
    a.record(0.0, "x", 0, "e")
    b.record(0.0, "x", 0, "e")
    b.record(0.0, "x", 0, "e")
    b.record(0.0, "y", 0, "f")
    assert diff_counters(a, b) == {"x.e": 1, "y.f": 1}
    assert diff_counters(a, a) == {}


def test_diff_counters_between_recovery_algorithms():
    """The trace diff isolates exactly what the algorithms do differently."""
    runs = {}
    for recovery in ("blocking", "nonblocking"):
        system = build_system(small_config(
            n=4, hops=10, recovery=recovery, crashes=[crash_at(2, 0.02)], seed=3,
        ))
        system.run()
        runs[recovery] = system.trace
    delta = diff_counters(runs["blocking"], runs["nonblocking"])
    assert delta.get("node.block", 0) < 0  # blocking blocks, nonblocking doesn't
    assert "recovery.ord_acquired" in delta  # only nonblocking uses ordinals
