"""Feature tests for the storage-realism layer.

Three levels of coverage:

* unit tests for group-commit batching on :class:`StableStorage`
  (queueing, flush triggers, crash loss, amortisation);
* unit tests for incremental checkpoint chains on
  :class:`CheckpointStore` (delta charging, forced fulls, reclaim on
  supersession, chain restore);
* integration: a disabled :class:`StorageRealismConfig` is
  byte-identical to the seed's ``storage_realism=None`` path, and the
  all-on configuration keeps every protocol stack consistent under a
  crash with the sanitizer running.
"""

import pytest

from repro.core.config import StorageRealismConfig
from repro.procs.failure import crash_at
from repro.sim.kernel import Simulator
from repro.storage.checkpoint import CheckpointStore
from repro.storage.stable import GroupCommitPolicy, StableStorage

from .helpers import run_small

OP = 0.01
BW = 1_000_000.0


def make_storage(policy=None):
    sim = Simulator()
    storage = StableStorage(
        sim, owner=0, op_latency=OP, bandwidth_bps=BW, group_commit=policy
    )
    return sim, storage


# ---------------------------------------------------------------------------
# group commit
# ---------------------------------------------------------------------------

def test_appends_below_thresholds_flush_on_window():
    sim, storage = make_storage(GroupCommitPolicy(window=0.05, max_ops=10))
    done = []
    storage.log_append("l", "a", 100, on_done=lambda: done.append(sim.now))
    storage.log_append("l", "b", 100, on_done=lambda: done.append(sim.now))
    assert storage.log_len("l") == 0
    sim.run()
    # both appends became durable in one device operation at window + op cost
    assert storage.log_len("l") == 2
    assert storage.stats.writes == 1
    assert storage.stats.batched_appends == 2
    assert storage.stats.batch_flushes == 1
    expected = 0.05 + OP + 200 / BW
    assert done == [pytest.approx(expected)] * 2


def test_projected_deadline_returned_for_queued_append():
    sim, storage = make_storage(GroupCommitPolicy(window=0.05, max_ops=10))
    deadline = storage.log_append("l", "a", 100)
    assert deadline == pytest.approx(0.05)


def test_max_ops_threshold_flushes_immediately():
    sim, storage = make_storage(GroupCommitPolicy(window=10.0, max_ops=3))
    done = []
    for entry in "abc":
        storage.log_append("l", entry, 100, on_done=lambda: done.append(sim.now))
    sim.run()
    # no 10-second window wait: the third append tripped the ops threshold
    assert done == [pytest.approx(OP + 300 / BW)] * 3
    assert storage.stats.batch_flushes == 1


def test_max_bytes_threshold_flushes_immediately():
    sim, storage = make_storage(
        GroupCommitPolicy(window=10.0, max_ops=100, max_bytes=150)
    )
    storage.log_append("l", "a", 100)
    storage.log_append("l", "b", 100)
    sim.run()
    assert sim.now == pytest.approx(OP + 200 / BW)
    assert storage.stats.batch_flushes == 1


def test_entries_become_durable_in_enqueue_order():
    sim, storage = make_storage(GroupCommitPolicy(window=0.01, max_ops=10))
    order = []
    storage.log_append("l", "first", 10, on_done=lambda: order.append("first"))
    storage.log_append("l", "second", 10, on_done=lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second"]
    assert storage.peek("log:l") == ["first", "second"]


def test_crash_loses_queued_appends():
    sim, storage = make_storage(GroupCommitPolicy(window=1.0, max_ops=10))
    done = []
    storage.log_append("l", "a", 100, on_done=lambda: done.append("a"))
    storage.log_append("l", "b", 100, on_done=lambda: done.append("b"))
    storage.abort_pending()
    sim.run()
    # the write buffer is volatile: nothing landed, nothing fires
    assert done == []
    assert storage.log_len("l") == 0
    assert storage.stats.batch_lost == 2
    assert storage.stats.writes == 0


def test_group_commit_amortises_device_time():
    appends = 10
    sim_b, batched = make_storage(GroupCommitPolicy(window=0.005, max_ops=64))
    sim_f, flat = make_storage(None)
    for i in range(appends):
        batched.log_append("l", i, 200)
        flat.log_append("l", i, 200)
    sim_b.run()
    sim_f.run()
    assert batched.log_len("l") == flat.log_len("l") == appends
    # one op latency for the batch vs one per append
    assert batched.stats.busy_time == pytest.approx(OP + appends * 200 / BW)
    assert flat.stats.busy_time == pytest.approx(appends * (OP + 200 / BW))
    assert batched.stats.busy_time < flat.stats.busy_time


def test_multiple_batches_over_time():
    sim, storage = make_storage(GroupCommitPolicy(window=0.01, max_ops=64))
    storage.log_append("l", "a", 10)
    sim.run()
    storage.log_append("l", "b", 10)
    sim.run()
    assert storage.stats.batch_flushes == 2
    assert storage.peek("log:l") == ["a", "b"]


# ---------------------------------------------------------------------------
# incremental checkpoints
# ---------------------------------------------------------------------------

def make_store(full_every=4, min_delta=100, incremental=True):
    sim, storage = make_storage()
    store = CheckpointStore(
        storage, node=0, incremental=incremental,
        full_every=full_every, min_delta_bytes=min_delta,
    )
    return sim, storage, store


def save(sim, store, dirty_bytes, state_bytes=10_000):
    cp = store.save(
        delivered_count=0, app_state={}, send_seqnos={},
        state_bytes=state_bytes, taken_at=sim.now, dirty_bytes=dirty_bytes,
    )
    sim.run()
    return cp


def test_first_checkpoint_is_full():
    sim, _storage, store = make_store()
    cp = save(sim, store, dirty_bytes=500)
    assert not cp.incremental
    assert cp.charged_bytes == 10_000
    assert store.chain_length == 1


def test_subsequent_checkpoints_are_charged_deltas():
    sim, _storage, store = make_store()
    save(sim, store, dirty_bytes=500)
    cp = save(sim, store, dirty_bytes=500)
    assert cp.incremental
    assert cp.charged_bytes == 500
    assert store.chain_length == 2
    assert store.delta_segments == 1


def test_delta_charge_clamped_to_floor_and_full():
    sim, _storage, store = make_store(min_delta=100)
    save(sim, store, dirty_bytes=500)
    tiny = save(sim, store, dirty_bytes=10)
    assert tiny.charged_bytes == 100  # min_delta_bytes floor
    huge = save(sim, store, dirty_bytes=50_000)
    # dirtying the whole image degenerates to a full segment
    assert not huge.incremental
    assert huge.charged_bytes == 10_000


def test_periodic_full_bounds_chain_and_reclaims_old_chain():
    sim, storage, store = make_store(full_every=3)
    chain_lengths = []
    for _ in range(7):
        save(sim, store, dirty_bytes=500)
        chain_lengths.append(store.chain_length)
    # full, d, d, full (chain resets), d, d, full
    assert chain_lengths == [1, 2, 3, 1, 2, 3, 1]
    assert store.full_segments == 3
    assert store.delta_segments == 4
    assert max(chain_lengths) <= store.full_every
    # each new full reclaimed the superseded chain (full + 2 deltas)
    assert storage.stats.reclaims == 2 * 3
    assert storage.stats.bytes_reclaimed == 2 * (10_000 + 500 + 500)


def test_restore_reads_whole_chain_and_returns_newest():
    sim, storage, store = make_store(full_every=8)
    save(sim, store, dirty_bytes=500)
    save(sim, store, dirty_bytes=500)
    newest = save(sim, store, dirty_bytes=500)
    start = sim.now
    got = []
    finish = store.restore(got.append)
    sim.run()
    assert got == [newest]
    # one device op per segment: full + two deltas
    expected = 3 * OP + (10_000 + 500 + 500) / BW
    assert finish - start == pytest.approx(expected)


def test_checkpoint_after_restore_is_forced_full():
    sim, _storage, store = make_store()
    save(sim, store, dirty_bytes=500)
    save(sim, store, dirty_bytes=500)
    store.restore(lambda _cp: None)
    sim.run()
    cp = save(sim, store, dirty_bytes=500)
    # no dirty baseline survives a restore: the next segment must be full
    assert not cp.incremental
    assert store.chain_length == 1


def test_flat_mode_accounting_untouched():
    sim, storage, store = make_store(incremental=False)
    cp = save(sim, store, dirty_bytes=500)
    # flat mode ignores dirty_bytes entirely: the seed's cost model
    assert not cp.incremental
    assert cp.charged_bytes == 10_000
    assert storage.stats.bytes_written == 10_000
    assert store.chain_length == 1


def test_incremental_bytes_written_less_than_flat():
    sim_i, storage_i, inc = make_store(full_every=8)
    sim_f, storage_f, flat = make_store(incremental=False)
    for _ in range(6):
        save(sim_i, inc, dirty_bytes=500)
        save(sim_f, flat, dirty_bytes=500)
    assert storage_i.stats.bytes_written < storage_f.stats.bytes_written


# ---------------------------------------------------------------------------
# integration: config plumbing
# ---------------------------------------------------------------------------

STACKS = [
    ("fbl", "nonblocking", 8),
    ("sender_based", "nonblocking", 8),
    ("manetho", "nonblocking", 8),
    ("pessimistic", "local", 8),
    # optimistic runs checkpoint-free: periodic checkpoints can be
    # orphaned by a later truncate (see the ROADMAP open item)
    ("optimistic", "optimistic", 0),
]


def _all_on_realism():
    return StorageRealismConfig(
        incremental_checkpoints=True,
        full_checkpoint_every=4,
        dirty_bytes_per_delivery=8_192,
        group_commit=True,
        batch_window=0.005,
        log_compaction=True,
    )


def test_disabled_realism_config_is_byte_identical_to_none():
    base = run_small(seed=5)
    disabled = run_small(seed=5, storage_realism=StorageRealismConfig())
    assert StorageRealismConfig().any_enabled() is False
    assert disabled.digests == base.digests
    assert disabled.end_time == base.end_time
    assert disabled.network.messages == base.network.messages


@pytest.mark.parametrize("protocol,recovery,ckpt", STACKS)
def test_all_on_realism_survives_crash_on_every_stack(protocol, recovery, ckpt):
    result = run_small(
        protocol=protocol,
        recovery=recovery,
        crashes=[crash_at(node=2, time=0.05)],
        storage_realism=_all_on_realism(),
        checkpoint_every=ckpt,
        sanitize=True,
        seed=3,
    )
    assert result.consistent
    assert result.extra["sanitizer"]["clean"]
    assert all(e.complete for e in result.episodes)
    stats = result.storage_ops[2]
    if ckpt:
        assert stats["delta_segments"] > 0
        assert stats["chain_length"] <= 4


def test_realism_reduces_storage_busy_time_end_to_end():
    flat = run_small(
        protocol="pessimistic", recovery="local",
        checkpoint_every=8, seed=3,
    )
    real = run_small(
        protocol="pessimistic", recovery="local",
        checkpoint_every=8, storage_realism=_all_on_realism(), seed=3,
    )
    busy_flat = sum(s["busy_time"] for s in flat.storage_ops.values())
    busy_real = sum(s["busy_time"] for s in real.storage_ops.values())
    assert busy_real < busy_flat
