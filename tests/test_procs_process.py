"""Unit tests for the deterministic application process."""

from repro.procs.process import ApplicationProcess, Send
from repro.workloads import make_workload


def make(node_id=0, n=4, workload=None):
    return ApplicationProcess(node_id, n, workload or make_workload("uniform", hops=4))


def test_initial_digest_depends_on_identity():
    assert make(0).digest != make(1).digest
    assert make(0).digest == make(0).digest


def test_deliver_advances_count_and_history():
    app = make()
    app.deliver(1, 0, {"hops": 0})
    app.deliver(2, 0, {"hops": 0})
    assert app.delivered_count == 2
    assert app.delivery_history == [(1, 0), (2, 0)]


def test_deliver_is_deterministic():
    a, b = make(), make()
    sends_a = a.deliver(1, 0, {"chain": "1.0", "hops": 3})
    sends_b = b.deliver(1, 0, {"chain": "1.0", "hops": 3})
    assert sends_a == sends_b
    assert a.digest == b.digest


def test_different_delivery_order_diverges():
    a, b = make(), make()
    a.deliver(1, 0, {"hops": 0})
    a.deliver(2, 0, {"hops": 0})
    b.deliver(2, 0, {"hops": 0})
    b.deliver(1, 0, {"hops": 0})
    assert a.digest != b.digest


def test_snapshot_restore_round_trip():
    app = make()
    app.deliver(1, 0, {"hops": 1})
    snapshot = app.snapshot()
    app.deliver(2, 0, {"hops": 0})
    app.restore(snapshot)
    assert app.delivered_count == 1
    assert app.delivery_history == [(1, 0)]


def test_replay_from_snapshot_reproduces_digest():
    app = make()
    app.deliver(1, 0, {"hops": 1})
    snapshot = app.snapshot()
    app.deliver(2, 0, {"hops": 0})
    final_digest = app.digest
    app.restore(snapshot)
    app.deliver(2, 0, {"hops": 0})
    assert app.digest == final_digest


def test_snapshot_is_independent_copy():
    app = make()
    snapshot = app.snapshot()
    app.deliver(1, 0, {"hops": 0})
    assert snapshot["delivered_count"] == 0
    assert snapshot["delivery_history"] == []


def test_reset_returns_to_initial():
    app = make()
    initial = app.digest
    app.deliver(1, 0, {"hops": 0})
    app.reset()
    assert app.digest == initial
    assert app.delivered_count == 0


def test_initial_sends_deterministic():
    assert make(0).initial_sends() == make(0).initial_sends()


def test_send_dataclass_defaults():
    send = Send(dst=3, payload={"a": 1})
    assert send.body_bytes == 128
