"""Unit tests for the network fault models and their Network integration."""

import random

import pytest

from repro.net.faults import (
    FaultDecision,
    LinkFaultSpec,
    NetworkFaultModel,
    Partition,
    ScheduledDrop,
)
from repro.net.latency import ConstantLatency
from repro.net.network import Message, MessageKind, Network
from repro.net.topology import full_mesh
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


def make_net(n=3, faults=None, trace=None, seed=0):
    sim = Simulator()
    net = Network(
        sim,
        full_mesh(n),
        latency=ConstantLatency(0.001),
        rngs=RngRegistry(seed),
        trace=trace,
        faults=faults,
    )
    return sim, net


def msg(src=0, dst=1, mtype="app", **kw):
    return Message(src=src, dst=dst, kind=MessageKind.APPLICATION, mtype=mtype, **kw)


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
def test_spec_rejects_bad_probability():
    with pytest.raises(ValueError):
        LinkFaultSpec(loss_prob=1.5)
    with pytest.raises(ValueError):
        LinkFaultSpec(dup_prob=-0.1)
    with pytest.raises(ValueError):
        LinkFaultSpec(reorder_delay=-1.0)


def test_partition_needs_two_disjoint_groups():
    with pytest.raises(ValueError):
        Partition([{0, 1, 2}])
    with pytest.raises(ValueError):
        Partition([{0, 1}, {1, 2}])
    with pytest.raises(ValueError):
        Partition([{0}, {1}], start=2.0, end=1.0)


def test_partition_severs_only_across_groups_while_active():
    p = Partition([{0, 1}, {2, 3}], start=1.0, end=2.0)
    assert not p.severs(0, 2, 0.5)  # not yet active
    assert p.severs(0, 2, 1.0)
    assert p.severs(2, 1, 1.5)
    assert not p.severs(0, 1, 1.5)  # same group
    assert not p.severs(0, 4, 1.5)  # 4 in no group: unaffected
    assert not p.severs(0, 2, 2.0)  # healed (end exclusive)


def test_scheduled_drop_filters_and_budget():
    d = ScheduledDrop(src=0, dst=1, mtype="app", start=1.0, end=2.0, max_drops=2)
    assert not d.claims(0, 1, "app", 0.5)  # before window
    assert not d.claims(0, 2, "app", 1.5)  # wrong dst
    assert not d.claims(0, 1, "ack", 1.5)  # wrong mtype
    assert d.claims(0, 1, "app", 1.5)
    assert d.claims(0, 1, "app", 1.6)
    assert not d.claims(0, 1, "app", 1.7)  # budget exhausted


# ----------------------------------------------------------------------
# decision logic
# ----------------------------------------------------------------------
def test_decide_order_partition_beats_loss():
    model = NetworkFaultModel(
        default=LinkFaultSpec(loss_prob=0.999),
        partitions=[Partition([{0}, {1}])],
    )
    decision = model.decide(0, 1, "app", 0.0, random.Random(0))
    assert decision.drop_cause == "partition"


def test_decide_no_faults_draws_nothing_from_rng():
    """An all-zero spec must not consume RNG state (determinism)."""
    model = NetworkFaultModel()
    rng = random.Random(42)
    before = rng.getstate()
    assert model.decide(0, 1, "app", 0.0, rng) is not None
    assert rng.getstate() == before


def test_decide_loss_is_deterministic_per_seed():
    model = NetworkFaultModel(default=LinkFaultSpec(loss_prob=0.5))
    outcomes1 = [
        model.decide(0, 1, "app", 0.0, rng).dropped
        for rng in [random.Random(7)]
        for _ in range(20)
    ]
    outcomes2 = [
        model.decide(0, 1, "app", 0.0, rng).dropped
        for rng in [random.Random(7)]
        for _ in range(20)
    ]
    assert outcomes1 == outcomes2
    assert any(outcomes1) and not all(outcomes1)


def test_per_link_override_beats_default():
    model = NetworkFaultModel(default=LinkFaultSpec(loss_prob=1.0))
    model.set_link(0, 1, LinkFaultSpec())  # clean link
    assert not model.decide(0, 1, "app", 0.0, random.Random(0)).dropped
    assert model.decide(0, 2, "app", 0.0, random.Random(0)).dropped


# ----------------------------------------------------------------------
# Network integration
# ----------------------------------------------------------------------
def test_network_drops_are_split_by_kind_and_cause():
    model = NetworkFaultModel(default=LinkFaultSpec(loss_prob=1.0))
    sim, net = make_net(faults=model)
    net.register(1, lambda m: None)
    net.send(msg())  # lost (loss_prob=1)
    net.send(Message(src=0, dst=1, kind=MessageKind.RECOVERY, mtype="r"))
    model.set_default(LinkFaultSpec())  # heal
    net.send(msg(dst=2))  # no handler at 2
    sim.run()
    assert net.stats.dropped == 3
    assert net.stats.drops_by_cause == {"loss": 2, "no_handler": 1}
    assert net.stats.drops_by_kind == {"application": 2, "recovery": 1}


def test_partition_drops_with_cause_and_heals():
    model = NetworkFaultModel(partitions=[Partition([{0}, {1}], end=1.0)])
    sim, net = make_net(faults=model)
    got = []
    net.register(1, got.append)
    net.send(msg())
    sim.run()
    assert got == [] and net.stats.drops_by_cause == {"partition": 1}
    sim.schedule_at(1.0, lambda: net.send(msg()))
    sim.run()
    assert len(got) == 1  # healed


def test_duplication_delivers_twice_and_is_counted():
    model = NetworkFaultModel(default=LinkFaultSpec(dup_prob=1.0))
    sim, net = make_net(faults=model)
    got = []
    net.register(1, got.append)
    net.send(msg())
    sim.run()
    assert len(got) == 2
    assert net.stats.duplicates_injected == 1
    # accounting charges the wire once per *send*, not per copy
    assert net.stats.messages == {"application": 1}


def test_reordering_lets_later_message_overtake():
    model = NetworkFaultModel()
    sim, net = make_net(faults=model)
    order = []
    net.register(1, lambda m: order.append(m.payload["i"]))
    # first message reordered (forced), second clean: 1 must overtake 0
    model.set_default(LinkFaultSpec(reorder_prob=1.0, reorder_delay=0.5))
    net.send(msg(payload={"i": 0}))
    model.set_default(LinkFaultSpec())
    net.send(msg(payload={"i": 1}))
    sim.run()
    assert order == [1, 0]


def test_fault_decisions_use_dedicated_stream():
    """Fault draws (decisions *and* duplicate latencies) come from the
    ``net.faults`` stream: the ``net.latency`` stream consumes exactly one
    draw per surviving send, with or without faults enabled."""
    from repro.net.latency import AtmLinkModel

    sim, net = make_net()
    net.latency = AtmLinkModel()
    net.register(1, lambda m: None)
    for _ in range(5):
        net.send(msg())
    sim.run()

    model = NetworkFaultModel(
        default=LinkFaultSpec(dup_prob=0.9, reorder_prob=0.5)
    )
    sim2, net2 = make_net(faults=model)
    net2.latency = AtmLinkModel()
    net2.register(1, lambda m: None)
    for _ in range(5):
        net2.send(msg())
    sim2.run()

    assert net2.stats.duplicates_injected > 0  # faults actually fired
    assert (
        net.rngs.stream("net.latency").getstate()
        == net2.rngs.stream("net.latency").getstate()
    )
