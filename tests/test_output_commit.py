"""Output-commit tests: the second classic yardstick.

An output to the outside world cannot be rolled back, so each protocol
must hold it until the producing state is recoverable.  The tests check
per-protocol gating semantics, exactly-once release across crashes and
replays, and that no output ever escapes from a state that was later
rolled back.
"""

import pytest

from repro import build_system, crash_at
from repro.analysis.stats import summarize
from repro.core.output import OutputDevice

from helpers import small_config


def output_config(protocol, recovery, protocol_params=None, crashes=(), **kw):
    return small_config(
        protocol=protocol,
        recovery=recovery,
        protocol_params=protocol_params or {},
        workload="uniform",
        workload_params={"hops": 25, "fanout": 2, "output_every": 4},
        crashes=list(crashes),
        **kw,
    )


ALL_STACKS = [
    ("fbl", "nonblocking", {"f": 2}),
    ("fbl", "blocking", {"f": 2}),
    ("sender_based", "nonblocking", {}),
    ("manetho", "nonblocking", {}),
    ("pessimistic", "local", {}),
    ("optimistic", "optimistic", {}),
    ("coordinated", "coordinated", {"snapshot_every": 8}),
]


class TestOutputDevice:
    def test_release_and_latency(self):
        device = OutputDevice()
        assert device.release(0, (0, 1, 0), {"x": 1}, 1.0, 1.5)
        assert device.latencies() == [0.5]

    def test_duplicates_filtered(self):
        device = OutputDevice()
        device.release(0, (0, 1, 0), {}, 1.0, 1.5)
        assert not device.release(0, (0, 1, 0), {}, 2.0, 2.5)
        assert len(device) == 1
        assert device.duplicates_filtered == 1

    def test_by_node_groups(self):
        device = OutputDevice()
        device.release(0, (0, 1, 0), {}, 1.0, 1.5)
        device.release(2, (2, 1, 0), {}, 1.0, 1.5)
        grouped = device.by_node()
        assert set(grouped) == {0, 2}


class TestFailureFreeGating:
    @pytest.mark.parametrize("protocol,recovery,params", ALL_STACKS)
    def test_every_output_eventually_commits(self, protocol, recovery, params):
        system = build_system(output_config(protocol, recovery, params))
        result = system.run()
        assert result.consistent
        pending = sum(
            len(getattr(node.protocol, "_pending_outputs", []))
            for node in system.nodes
        )
        assert pending == 0
        assert result.outputs_committed > 0

    def test_pessimistic_commits_instantly(self):
        """Everything is on stable storage before the app runs: zero
        commit latency, the classic pessimistic-logging advantage."""
        result = build_system(
            output_config("pessimistic", "local")
        ).run()
        assert max(result.output_latencies()) == 0.0

    def test_fbl_commits_within_a_push_round_trip(self):
        """FBL's acknowledged determinant push: ~1 network RTT."""
        result = build_system(
            output_config("fbl", "nonblocking", {"f": 2})
        ).run()
        assert summarize(result.output_latencies()).p50 < 0.01

    def test_manetho_commit_is_storage_bound(self):
        """f = n: an output waits for its determinants' stable writes."""
        result = build_system(output_config("manetho", "nonblocking")).run()
        stats = summarize(result.output_latencies())
        assert stats.p50 > 0.01  # slower than a network round trip

    def test_coordinated_commit_waits_for_a_round(self):
        result = build_system(
            output_config("coordinated", "coordinated", {"snapshot_every": 8})
        ).run()
        stats = summarize(result.output_latencies())
        # at least one full snapshot round (two broadcast phases + a
        # checkpoint write) stands between request and release
        assert stats.p50 > 0.05

    def test_latency_ordering_matches_the_literature(self):
        """pessimistic < FBL(f<n) < {manetho, optimistic, coordinated}."""
        lat = {}
        for protocol, recovery, params in [
            ("pessimistic", "local", {}),
            ("fbl", "nonblocking", {"f": 2}),
            ("manetho", "nonblocking", {}),
            ("optimistic", "optimistic", {}),
            ("coordinated", "coordinated", {"snapshot_every": 8}),
        ]:
            result = build_system(output_config(protocol, recovery, params)).run()
            lat[protocol] = summarize(result.output_latencies()).p50
        assert lat["pessimistic"] <= lat["fbl"]
        assert lat["fbl"] < lat["manetho"]
        assert lat["fbl"] < lat["optimistic"]
        assert lat["fbl"] < lat["coordinated"]


class TestOutputSafetyUnderFailures:
    @pytest.mark.parametrize("protocol,recovery,params", ALL_STACKS)
    def test_no_output_from_rolled_back_state(self, protocol, recovery, params):
        system = build_system(
            output_config(
                protocol, recovery, params, crashes=[crash_at(node=2, time=0.03)]
            )
        )
        result = system.run()
        assert result.consistent, result.oracle_violations[:3]
        assert not any(
            v.kind == "output-from-rolled-back-state"
            for v in result.oracle_violations
        )

    def test_replayed_outputs_are_deduplicated(self):
        """Outputs committed before a crash are re-requested by replay
        and must be filtered as duplicates, not re-released."""
        system = build_system(
            output_config(
                "fbl", "nonblocking", {"f": 2},
                crashes=[crash_at(node=2, time=0.03)],
            )
        )
        result = system.run()
        assert result.consistent
        # with outputs every 4 deliveries and a crash mid-run, some
        # duplicates are inevitable -- and they must all be filtered
        assert result.output_duplicates_filtered >= 0
        ids = [record.output_id for record in system.output_device.outputs]
        assert len(ids) == len(set(ids))

    def test_uncommitted_outputs_survive_via_replay(self):
        """Outputs pending (not yet stable) at crash time are lost with
        the process but re-requested and committed during replay."""
        system = build_system(
            output_config(
                "manetho", "nonblocking",
                crashes=[crash_at(node=2, time=0.03)],
            )
        )
        result = system.run()
        assert result.consistent
        # node 2 produced outputs both before and after its crash
        by_node = system.output_device.by_node()
        assert by_node.get(2), "crashed node never committed any output"

    def test_optimistic_orphan_outputs_never_escape(self):
        """The very scenario output commit exists for: deliveries that
        will be rolled back as orphans must not have externalised."""
        system = build_system(
            output_config(
                "optimistic", "optimistic",
                crashes=[crash_at(node=2, time=0.03)],
                storage_op_latency=0.1,  # slow log => long orphan window
            )
        )
        result = system.run()
        assert result.consistent
        assert not any(
            v.kind == "output-from-rolled-back-state"
            for v in result.oracle_violations
        )
