"""Chaos harness: random workloads x random fault schedules.

Property-style robustness testing for every protocol/recovery pairing:
each trial draws a workload and a fault schedule (message loss up to
20%, duplication, reordering, a healed partition, transient storage
faults, and 0--2 crashes) from a seeded generator, runs the full system
with the reliable transport, and asserts the paper's invariants:

* the :class:`ConsistencyOracle` records **zero** violations,
* every crashed process recovers and every process ends live,
* the run terminates in bounded virtual time, and
* the whole trial is deterministic per ``(combo, seed)``.

``CHAOS_RUNS_PER_COMBO`` (env var, default 30) scales the sweep; the CI
chaos job runs the same suite under a fixed seed base.  Trials execute
through :class:`repro.runner.TrialRunner` (worker count from
``REPRO_JOBS``, serial by default), and since every trial is
deterministic, a failing one is replayed in-process to capture its
trace for the artifact dump.

Crash counts respect each protocol's failure budget: FBL(f=2) gets up
to two overlapping crashes, Manetho (f = n) too; the single-failure
protocols get at most one crash per trial.
"""

import os
import random
import zlib

import pytest

from repro import SystemConfig, build_system
from repro.core.config import FaultConfig
from repro.procs.failure import crash_at, storage_outage_at

RUNS_PER_COMBO = int(os.environ.get("CHAOS_RUNS_PER_COMBO", "30"))
SEED_BASE = int(os.environ.get("CHAOS_SEED_BASE", "0"))
#: when set, a failing trial dumps its JSONL trace + span summary here
#: (CI uploads the directory as a workflow artifact)
ARTIFACT_DIR = os.environ.get("CHAOS_ARTIFACT_DIR", "")
#: when truthy, every trial also runs the online invariant monitor
#: (repro.sanitizer) and a sanitizer violation fails the trial; the
#: nightly workflow turns this on for the deep sweep
SANITIZE = os.environ.get("CHAOS_SANITIZE", "") not in ("", "0")
#: "churn" biases every trial toward cascading failures: the full crash
#: budget fires inside one ~1.5 s window (later crashes land mid-recovery
#: of earlier ones) and a partition always cuts the system and heals in
#: the middle of that window; the nightly workflow runs both profiles
PROFILE = os.environ.get("CHAOS_PROFILE", "")
#: event-heap shard count for every trial (1 = the classic single heap);
#: the nightly deep-chaos job sweeps this so the sharded kernel faces
#: the same fault schedules as the reference kernel
SHARDS = int(os.environ.get("REPRO_SHARDS", "1"))

#: (protocol, recovery, max concurrent crashes the protocol tolerates)
COMBOS = [
    ("fbl", "nonblocking", 2),
    ("fbl", "blocking", 2),
    ("sender_based", "nonblocking", 1),
    ("manetho", "nonblocking", 2),
    ("pessimistic", "local", 1),
    ("optimistic", "optimistic", 1),
    ("coordinated", "coordinated", 1),
    ("adaptive", "nonblocking", 2),
]


def chaos_config(
    protocol: str,
    recovery: str,
    max_crashes: int,
    seed: int,
    profile: str = None,
) -> SystemConfig:
    """Draw one random scenario; fully determined by the arguments.

    ``profile`` defaults to ``$CHAOS_PROFILE``; the empty default keeps
    the original fault distribution byte-for-byte (the churn overrides
    draw *after* every standard draw, so default-profile seeds are
    unchanged).
    """
    if profile is None:
        profile = PROFILE
    combo_tag = zlib.crc32(f"{protocol}/{recovery}".encode()) & 0xFFFF
    draw = random.Random(combo_tag * 100_000 + seed)
    n = draw.choice([4, 5, 6])
    hops = draw.randrange(20, 50)

    faults = FaultConfig(
        loss_prob=draw.uniform(0.0, 0.2),
        dup_prob=draw.uniform(0.0, 0.1),
        reorder_prob=draw.uniform(0.0, 0.15),
        reorder_delay=draw.uniform(0.001, 0.004),
        storage_fail_prob=draw.uniform(0.0, 0.08),
    )
    if draw.random() < 0.5:
        # a healed partition: random 2-way split of apps + sequencer
        members = list(range(n + 1))
        draw.shuffle(members)
        cut = draw.randrange(1, n)
        start = draw.uniform(0.01, 0.3)
        faults.partitions.append(
            ([members[:cut], members[cut:]], start + draw.uniform(0.1, 0.5))
        )

    injections = []
    if draw.random() < 0.3:
        # a brief full storage outage on one node
        injections.append(
            storage_outage_at(
                draw.randrange(n), draw.uniform(0.01, 0.5), draw.uniform(0.02, 0.1)
            )
        )

    crashes = []
    for victim in draw.sample(range(n), draw.randint(0, max_crashes)):
        crashes.append(crash_at(victim, draw.uniform(0.02, 0.8)))

    if profile == "churn":
        # cascading failures: the whole crash budget fires inside one
        # short window, so every crash after the first lands while an
        # earlier recovery is still gathering
        window = draw.uniform(0.02, 0.4)
        crashes = [
            crash_at(victim, window + draw.uniform(0.0, 1.5))
            for victim in draw.sample(range(n), max_crashes)
        ]
        # and a partition that is up when recovery starts and heals in
        # the middle of the gather, forcing resumes over fresh links
        members = list(range(n + 1))
        draw.shuffle(members)
        cut = draw.randrange(1, n)
        faults.partitions = [
            ([members[:cut], members[cut:]], window + draw.uniform(0.3, 1.0))
        ]

    params = {}
    if protocol == "fbl":
        params = {"f": 2}
    elif protocol == "coordinated":
        params = {"snapshot_every": 8}
    elif protocol == "adaptive":
        # an eager controller so short chaos runs still cross modes
        params = {"f": 2, "eval_every": 6, "min_dwell": 8, "hysteresis": 1.0}
    return SystemConfig(
        n=n,
        seed=seed,
        # spans cost no simulated events, and a failing trial's dump is
        # far more useful with recovery phases attributed
        spans=True,
        sanitize=SANITIZE,
        name=f"chaos-{profile + '-' if profile else ''}{protocol}-{recovery}-{seed}",
        protocol=protocol,
        protocol_params=params,
        recovery=recovery,
        workload="uniform",
        workload_params={"hops": hops, "fanout": 2},
        crashes=crashes,
        injections=injections,
        faults=faults,
        transport="reliable",
        # at 20% loss a round trip fails ~36% of the time; 30 retries make
        # a give-up between live endpoints (which would void the reliable-
        # channel abstraction the protocols assume) astronomically unlikely
        transport_params={"max_retries": 30},
        detection_delay=0.5,
        state_bytes=100_000,
        max_events=3_000_000,
        shard_count=SHARDS,
    )


def run_trial(protocol, recovery, max_crashes, seed):
    config = chaos_config(protocol, recovery, max_crashes, seed)
    system = build_system(config)
    result = system.run()
    return config, system, result


def check_invariants(config, result):
    """The paper's invariants, on a (possibly worker-produced) result.

    Returns a list of violation descriptions; empty means the trial
    passed.  Everything asserted here must live on the picklable
    :class:`RunResult` so trials can run in worker processes.
    """
    context = f"{config.name} (crashes={len(config.crashes)})"
    failures = []
    if not result.consistent:
        failures.append(
            f"{context}: oracle violations {result.oracle_violations[:3]}"
        )
    non_live = result.extra["non_live_nodes"]
    if non_live:
        failures.append(f"{context}: nodes left non-live {non_live}")
    if not all(e.complete for e in result.episodes):
        failures.append(f"{context}: unfinished recovery episodes")
    if len(result.episodes) < len(config.crashes):
        failures.append(
            f"{context}: {len(result.episodes)} episodes for "
            f"{len(config.crashes)} crashes"
        )
    if result.end_time >= 60.0:
        failures.append(f"{context}: ran to {result.end_time}")
    if result.final_progress <= 0:
        failures.append(f"{context}: no progress")
    sanitizer = result.extra.get("sanitizer")
    if sanitizer is not None and not sanitizer["clean"]:
        failures.append(
            f"{context}: sanitizer violations "
            f"{[v['invariant'] for v in sanitizer['violations'][:3]]}"
        )
    return failures


def dump_failure_artifacts(config, system) -> None:
    """Preserve a failing trial's evidence for post-mortem.

    Writes ``<name>.trace.jsonl`` (replayable with ``repro trace``) and
    ``<name>.spans.txt`` (the span forest) under ``CHAOS_ARTIFACT_DIR``;
    a no-op when the env var is unset (local runs).
    """
    if not ARTIFACT_DIR:
        return
    from repro.analysis.report import format_span_tree
    from repro.analysis.trace_io import dump_trace
    from repro.sim.spans import spans_from_trace

    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    base = os.path.join(ARTIFACT_DIR, config.name)
    dump_trace(system.trace, base + ".trace.jsonl")
    with open(base + ".spans.txt", "w", encoding="utf-8") as handle:
        handle.write(format_span_tree(spans_from_trace(system.trace)))
        handle.write("\n")


@pytest.mark.parametrize("protocol,recovery,max_crashes", COMBOS,
                         ids=[f"{p}-{r}" for p, r, _ in COMBOS])
def test_chaos_no_violations_and_eventual_recovery(protocol, recovery, max_crashes):
    from repro.runner import TrialRunner, TrialSpec

    configs = [
        chaos_config(protocol, recovery, max_crashes, SEED_BASE + trial)
        for trial in range(RUNS_PER_COMBO)
    ]
    trials = TrialRunner().run(TrialSpec(config=c) for c in configs)
    for config, trial in zip(configs, trials):
        failures = check_invariants(config, trial.summary)
        if failures:
            # the trial is deterministic per (combo, seed): replay it
            # in-process to recover the trace the worker didn't ship back
            _, system, _ = run_trial(protocol, recovery, max_crashes, config.seed)
            dump_failure_artifacts(config, system)
            raise AssertionError("; ".join(failures))


def test_chaos_trial_is_deterministic():
    """The same (combo, seed) must replay event-for-event."""

    def fingerprint(seed):
        _, system, result = run_trial("fbl", "nonblocking", 2, seed)
        return (
            result.end_time,
            dict(result.network.messages),
            dict(result.network.bytes),
            result.network.dropped,
            dict(result.network.drops_by_cause),
            result.network.retransmits,
            result.network.duplicates_injected,
            dict(result.digests),
            result.extra["events_processed"],
            result.extra.get("transport_stats"),
        )

    assert fingerprint(SEED_BASE + 3) == fingerprint(SEED_BASE + 3)


def test_chaos_generator_exercises_every_fault_class():
    """Across the sweep the generator must actually produce each fault
    kind (guards against a silently-degenerate harness)."""
    saw = {"loss": False, "dup": False, "partition": False,
           "storage": False, "crash": False, "outage": False}
    for trial in range(max(RUNS_PER_COMBO, 20)):
        config = chaos_config("fbl", "nonblocking", 2, SEED_BASE + trial)
        saw["loss"] |= config.faults.loss_prob > 0.01
        saw["dup"] |= config.faults.dup_prob > 0.01
        saw["partition"] |= bool(config.faults.partitions)
        saw["storage"] |= config.faults.storage_fail_prob > 0.01
        saw["crash"] |= bool(config.crashes)
        saw["outage"] |= bool(config.injections)
    missing = [k for k, v in saw.items() if not v]
    assert not missing, f"chaos generator never produced: {missing}"
