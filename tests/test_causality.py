"""Unit tests for Lamport clocks, vector clocks and determinants."""

import pytest

from repro.causality.determinant import Determinant
from repro.causality.lamport import LamportClock
from repro.causality.vector_clock import VectorClock


class TestLamportClock:
    def test_tick_increments(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_update_takes_max_plus_one(self):
        clock = LamportClock(3)
        assert clock.update(10) == 11
        assert clock.update(2) == 12

    def test_peek_does_not_advance(self):
        clock = LamportClock(5)
        assert clock.peek() == 5
        assert clock.peek() == 5

    def test_reset(self):
        clock = LamportClock(5)
        clock.reset()
        assert clock.peek() == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LamportClock(-1)
        with pytest.raises(ValueError):
            LamportClock().update(-1)

    def test_int_conversion(self):
        assert int(LamportClock(7)) == 7


class TestVectorClock:
    def test_tick_and_get(self):
        vc = VectorClock()
        vc.tick(0).tick(0).tick(1)
        assert vc.get(0) == 2
        assert vc.get(1) == 1
        assert vc.get(9) == 0

    def test_merge_componentwise_max(self):
        a = VectorClock({0: 3, 1: 1})
        b = VectorClock({1: 5, 2: 2})
        a.merge(b)
        assert a.to_dict() == {0: 3, 1: 5, 2: 2}

    def test_happens_before(self):
        a = VectorClock({0: 1})
        b = VectorClock({0: 2, 1: 1})
        assert a < b
        assert a <= b
        assert not b <= a

    def test_equality_and_self_order(self):
        a = VectorClock({0: 1})
        b = VectorClock({0: 1})
        assert a == b
        assert a <= b
        assert not a < b

    def test_concurrent(self):
        a = VectorClock({0: 1})
        b = VectorClock({1: 1})
        assert a.concurrent(b)
        assert b.concurrent(a)
        assert not a.concurrent(a)

    def test_zero_components_ignored(self):
        assert VectorClock({0: 0}) == VectorClock()

    def test_join(self):
        joined = VectorClock.join([VectorClock({0: 1}), VectorClock({1: 2})])
        assert joined.to_dict() == {0: 1, 1: 2}

    def test_copy_is_independent(self):
        a = VectorClock({0: 1})
        b = a.copy()
        b.tick(0)
        assert a.get(0) == 1

    def test_hashable(self):
        assert hash(VectorClock({0: 1})) == hash(VectorClock({0: 1}))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            VectorClock({0: -1})


class TestDeterminant:
    def test_fields_and_ids(self):
        det = Determinant(sender=1, ssn=5, receiver=2, rsn=7)
        assert det.message_id == (1, 5)
        assert det.delivery_id == (2, 7)

    def test_round_trip_tuple(self):
        det = Determinant(sender=1, ssn=5, receiver=2, rsn=7)
        assert Determinant.from_tuple(det.to_tuple()) == det

    def test_ordering_is_total(self):
        a = Determinant(sender=0, ssn=0, receiver=1, rsn=0)
        b = Determinant(sender=0, ssn=1, receiver=1, rsn=1)
        assert a < b
        assert sorted([b, a]) == [a, b]

    def test_frozen(self):
        det = Determinant(sender=0, ssn=0, receiver=1, rsn=0)
        with pytest.raises(AttributeError):
            det.ssn = 3

    def test_rejects_self_delivery(self):
        with pytest.raises(ValueError):
            Determinant(sender=1, ssn=0, receiver=1, rsn=0)

    def test_rejects_negative_sequence_numbers(self):
        with pytest.raises(ValueError):
            Determinant(sender=0, ssn=-1, receiver=1, rsn=0)
        with pytest.raises(ValueError):
            Determinant(sender=0, ssn=0, receiver=1, rsn=-1)

    def test_str_is_compact(self):
        det = Determinant(sender=0, ssn=3, receiver=1, rsn=9)
        assert "0" in str(det) and "3" in str(det) and "9" in str(det)
