"""Unit tests for the network message bus."""

import pytest

from repro.net.latency import ConstantLatency
from repro.net.network import (
    DETERMINANT_BYTES,
    HEADER_BYTES,
    Message,
    MessageKind,
    Network,
    NetworkStats,
)
from repro.net.topology import full_mesh
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


def make_net(n=3, latency=None, trace=None):
    sim = Simulator()
    net = Network(sim, full_mesh(n), latency=latency or ConstantLatency(0.001), trace=trace)
    return sim, net


def msg(src=0, dst=1, kind=MessageKind.APPLICATION, mtype="app", **kw):
    return Message(src=src, dst=dst, kind=kind, mtype=mtype, **kw)


def test_message_delivered_to_handler():
    sim, net = make_net()
    got = []
    net.register(1, got.append)
    net.send(msg(body_bytes=10))
    sim.run()
    assert len(got) == 1
    assert got[0].src == 0


def test_delivery_takes_latency():
    sim, net = make_net(latency=ConstantLatency(0.25))
    got = []
    net.register(1, lambda m: got.append(sim.now))
    net.send(msg())
    sim.run()
    assert got == [0.25]


def test_fifo_per_channel():
    """Messages on one channel arrive in send order even with weird latency."""
    sim, net = make_net()
    order = []
    net.register(1, lambda m: order.append(m.payload["i"]))

    class Shrinking(ConstantLatency):
        def __init__(self):
            self.next = 1.0
            super().__init__(0.0)

        def sample(self, size, rng):
            self.next /= 2  # later messages "faster" -- FIFO must still hold
            return self.next

    net.latency = Shrinking()
    for i in range(5):
        net.send(msg(payload={"i": i}))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_unregistered_destination_drops():
    sim, net = make_net()
    net.send(msg(dst=2))
    sim.run()
    assert net.stats.dropped == 1


def test_deregister_then_drop():
    sim, net = make_net()
    got = []
    net.register(1, got.append)
    net.deregister(1)
    net.send(msg())
    sim.run()
    assert got == []
    assert net.stats.dropped == 1


def test_no_link_raises():
    sim, net = make_net()
    with pytest.raises(ValueError):
        net.send(msg(src=0, dst=0))


def test_size_accounting():
    message = msg(body_bytes=100, piggyback=[1, 2, 3])
    assert message.size_bytes == HEADER_BYTES + 100 + 3 * DETERMINANT_BYTES


def test_stats_by_kind():
    sim, net = make_net()
    net.register(1, lambda m: None)
    net.send(msg(kind=MessageKind.APPLICATION, body_bytes=10))
    net.send(msg(kind=MessageKind.RECOVERY, mtype="ctl", body_bytes=20))
    net.send(msg(kind=MessageKind.RECOVERY, mtype="ctl", body_bytes=20))
    sim.run()
    app_n, app_b = net.stats.of_kind(MessageKind.APPLICATION)
    rec_n, rec_b = net.stats.of_kind(MessageKind.RECOVERY)
    assert (app_n, app_b) == (1, HEADER_BYTES + 10)
    assert (rec_n, rec_b) == (2, 2 * (HEADER_BYTES + 20))
    assert net.stats.total_messages() == 3


def test_broadcast_skips_self_and_sorts():
    sim, net = make_net(4)
    got = []
    for node in range(4):
        net.register(node, lambda m, node=node: got.append(m.dst))
    sent = net.broadcast(0, [3, 1, 2, 0], MessageKind.RECOVERY, "ping")
    sim.run()
    assert [m.dst for m in sent] == [1, 2, 3]
    assert sorted(got) == [1, 2, 3]


def test_broadcast_payload_fn():
    sim, net = make_net(3)
    payloads = {}
    net.register(1, lambda m: payloads.update({1: m.payload}))
    net.register(2, lambda m: payloads.update({2: m.payload}))
    net.broadcast(0, [1, 2], MessageKind.RECOVERY, "x", payload_fn=lambda d: {"dst": d})
    sim.run()
    assert payloads == {1: {"dst": 1}, 2: {"dst": 2}}


def test_trace_records_send_and_deliver():
    trace = TraceRecorder()
    sim, net = make_net(trace=trace)
    net.register(1, lambda m: None)
    net.send(msg())
    sim.run()
    assert trace.count("net", "send") == 1
    assert trace.count("net", "deliver") == 1


def test_per_link_latency_override():
    sim, net = make_net(latency=ConstantLatency(1.0))
    net.topology.set_link_latency(0, 1, ConstantLatency(0.1))
    times = []
    net.register(1, lambda m: times.append(sim.now))
    net.register(2, lambda m: times.append(sim.now))
    net.send(msg(dst=1))
    net.send(msg(dst=2))
    sim.run()
    assert times == [pytest.approx(0.1), pytest.approx(1.0)]


def test_message_ids_unique_per_network():
    """msg_ids are stamped at transmit time from a per-network counter."""
    sim, net = make_net()
    net.register(1, lambda m: None)
    a = net.send(msg())
    b = net.send(msg())
    assert (a.msg_id, b.msg_id) == (1, 2)
    # a second network starts its own sequence -- two runs in one process
    # never share id state (the counter is per instance, not module-global)
    sim2, net2 = make_net()
    net2.register(1, lambda m: None)
    c = net2.send(msg())
    assert c.msg_id == 1


def test_network_stats_record():
    stats = NetworkStats()
    stats.record(MessageKind.PROTOCOL, 100)
    stats.record(MessageKind.PROTOCOL, 50)
    assert stats.of_kind(MessageKind.PROTOCOL) == (2, 150)
    assert stats.total_bytes() == 150
