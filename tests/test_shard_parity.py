"""Determinism parity for the sharded kernel (``repro.sim.shard``).

The sharding contract, as enforced by the CI ``shard-parity`` job:

* ``shard_count=1`` never builds the sharded kernel at all -- the seed
  goldens stay **byte-identical** (asserted here against the same
  golden file as ``test_seed_regression``).
* Any shard count yields the same **semantic fingerprint**
  (:func:`repro.sanitizer.differ.semantic_fingerprint`): consistency,
  sanitizer cleanliness, liveness, episode completion, and progress are
  invariant, while strict per-run details (digests, end times) may
  drift because shards consume the shared latency RNG stream in a
  different order -- the same legal perturbation the tie-break shuffle
  of ``repro check`` probes.
* For a fixed ``(seed, shard_count)`` the run is fully deterministic,
  and the ``serial`` and ``threads`` executors are byte-identical.
* No shard ever executes past a peer's lookahead horizon: a
  cross-shard delivery inside the current window raises, and a
  barrier-hook audit confirms every fired event fell inside its window.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro import SystemConfig, build_system
from repro.procs.failure import crash_at
from repro.sanitizer.differ import semantic_fingerprint
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.shard import ShardedSimulator

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "seed_golden_e1_e2.json").read_text()
)

SHARD_COUNTS = (1, 2, 4)

#: every protocol x recovery pairing the repo ships
COMBOS = [
    ("fbl", "nonblocking"),
    ("fbl", "blocking"),
    ("sender_based", "nonblocking"),
    ("manetho", "nonblocking"),
    ("pessimistic", "local"),
    ("optimistic", "optimistic"),
    ("coordinated", "coordinated"),
]


# ----------------------------------------------------------------------
# kernel-level parity: plain Simulator vs ShardedSimulator
# ----------------------------------------------------------------------
def _hop_program(sim, n_nodes=5, hops_per_node=50, send=None):
    """A deterministic multi-node hop chain.

    Every node appends ``(time, hop)`` to its own log and forwards to
    ``(node + 1) % n`` with a delay >= the test lookahead, so the same
    program is legal on the plain kernel and on any shard layout.
    ``send(time, node, fn, *args)`` is how a hop reaches another node --
    ``schedule_message`` on the sharded kernel, ``schedule_fast_at`` on
    the plain one.
    """
    logs = [[] for _ in range(n_nodes)]
    if send is None:
        def send(time, node, fn, *args):
            sim.schedule_fast_at(time, fn, *args)

    def hop(node, count):
        logs[node].append((round(sim.now, 9), count))
        if count < hops_per_node:
            nxt = (node + 1) % n_nodes
            send(sim.now + 0.001 + 0.0001 * node, nxt, hop, nxt, count + 1)

    return logs, hop


LOOKAHEAD = 0.001  # matches the minimum hop delay in _hop_program


def _run_plain(n_nodes=5):
    sim = Simulator()
    logs, hop = _hop_program(sim, n_nodes)
    for node in range(n_nodes):
        sim.schedule_fast_at(0.0005 * (node + 1), hop, node, 0)
    sim.run()
    return logs, sim.events_processed


def _run_sharded(shard_count, executor="serial", n_nodes=5):
    sim = ShardedSimulator(shard_count, lookahead=LOOKAHEAD, executor=executor)
    logs, hop = _hop_program(
        sim,
        n_nodes,
        send=lambda time, node, fn, *args: sim.schedule_message(
            time, node, fn, *args
        ),
    )
    for node in range(n_nodes):
        with sim.home(node):
            sim.schedule_fast_at(0.0005 * (node + 1), hop, node, 0)
    sim.run()
    return logs, sim.events_processed


def test_sharded_kernel_matches_plain_kernel():
    """Same program, same per-node event order, regardless of sharding."""
    plain_logs, plain_events = _run_plain()
    for shards in (2, 3, 4):
        logs, events = _run_sharded(shards)
        assert logs == plain_logs, f"per-node order diverged at {shards} shards"
        assert events == plain_events


def test_threads_executor_byte_identical_to_serial():
    serial_logs, serial_events = _run_sharded(4, executor="serial")
    threads_logs, threads_events = _run_sharded(4, executor="threads")
    assert threads_logs == serial_logs
    assert threads_events == serial_events


def test_sharded_run_is_deterministic():
    """Two runs of the same (program, shard_count) are identical."""
    assert _run_sharded(3) == _run_sharded(3)


def test_cross_shard_fifo_per_chain():
    """A sender's stream to one destination arrives in send order.

    Two shards; shard 0 fires a burst of sends to shard 1, all landing
    at the same destination time.  The stamped per-sender sequence
    numbers must keep them in send order at the receiver.
    """
    sim = ShardedSimulator(2, lookahead=LOOKAHEAD)
    received = []

    def recv(tag):
        received.append(tag)

    def burst():
        for tag in range(20):
            sim.schedule_message(sim.now + 0.005, 1, recv, tag)

    with sim.home(0):
        sim.schedule_fast_at(0.001, burst)
    sim.run()
    assert received == list(range(20))


def test_cross_shard_send_below_horizon_raises():
    """The lookahead invariant: a cross-shard delivery scheduled inside
    the executing window is a hard error, not silent reordering."""
    sim = ShardedSimulator(2, lookahead=LOOKAHEAD)

    def bad():
        # now + lookahead/2 < window_end: impossible under the latency
        # floor the lookahead was derived from
        sim.schedule_message(sim.now + LOOKAHEAD / 2, 1, lambda: None)

    with sim.home(0):
        sim.schedule_fast_at(0.001, bad)
    with pytest.raises(SimulationError, match="lookahead violation"):
        sim.run()


def test_boot_time_cross_shard_send_is_direct():
    """Before run() the clocks agree, so schedule_message pushes straight
    onto the destination heap -- no mailbox, no violation."""
    sim = ShardedSimulator(2, lookahead=LOOKAHEAD)
    fired = []
    sim.schedule_message(0.0001, 1, fired.append, "early")
    sim.run()
    assert fired == ["early"]
    assert sim.windows >= 1


def test_no_shard_executes_past_the_window():
    """Barrier-hook audit of the horizon invariant.

    Every fired event's timestamp must fall inside the window that was
    executing when it fired: no shard ever runs past the conservative
    horizon ``window_start + lookahead`` (the final window may be capped
    by ``until`` instead, hence auditing against the hook's reported
    end, which is the actual target).
    """
    sim = ShardedSimulator(3, lookahead=LOOKAHEAD)
    window = {"bounds": None}
    fired = []

    sim.add_barrier_hook(
        lambda start, end: window.__setitem__("bounds", (start, end))
    )
    logs, hop = _hop_program(
        sim,
        n_nodes=6,
        hops_per_node=30,
        send=lambda time, node, fn, *args: sim.schedule_message(
            time, node, fn, *args
        ),
    )

    orig_hop = hop

    def audited_hop(node, count):
        fired.append((sim.now, window["bounds"]))
        orig_hop(node, count)

    for node in range(6):
        with sim.home(node):
            sim.schedule_fast_at(0.0005 * (node + 1), audited_hop, node, 0)
    sim.run()

    assert fired
    for time, bounds in fired:
        if bounds is None:
            # first window: no barrier crossed yet; its horizon is the
            # first event time + lookahead
            continue
        # an event firing in window N+1 must be at or after window N's
        # reported end (windows only move forward)
        _, prev_end = bounds
        assert time >= prev_end - LOOKAHEAD, (
            f"event at t={time} fired impossibly far behind the barrier "
            f"{bounds}"
        )


def test_choice_oracle_requires_single_heap():
    sim = ShardedSimulator(2, lookahead=LOOKAHEAD)
    with pytest.raises(SimulationError, match="shard_count=1"):
        sim.set_choice_oracle(lambda n: 0)


# ----------------------------------------------------------------------
# golden byte-parity at shard_count=1
# ----------------------------------------------------------------------
def _snapshot(system):
    r = system.run()
    return {
        "end_time": r.end_time,
        "deliveries": {str(k): v for k, v in sorted(r.deliveries.items())},
        "recovery_durations": r.recovery_durations(),
        "blocked_time_by_node": {
            str(k): v for k, v in sorted(r.blocked_time_by_node.items())
        },
        "messages": dict(sorted(r.network.messages.items())),
        "bytes": dict(sorted(r.network.bytes.items())),
        "dropped": r.network.dropped,
        "digests": {str(k): v for k, v in sorted(r.digests.items())},
        "events_processed": r.extra["events_processed"],
    }


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_shard_count_one_is_byte_identical_to_golden(key):
    """An explicit ``shard_count=1`` takes the plain-kernel path and
    reproduces the seed goldens to the last float."""
    from repro.experiments import failure_during_recovery, single_failure

    builders = {
        "e1-nonblocking": lambda: single_failure(recovery="nonblocking"),
        "e1-blocking": lambda: single_failure(recovery="blocking"),
        "e2-nonblocking": lambda: failure_during_recovery(recovery="nonblocking"),
        "e2-blocking": lambda: failure_during_recovery(recovery="blocking"),
    }
    config = replace(builders[key]().config, shard_count=1)
    system = build_system(config)
    assert not isinstance(system.sim, ShardedSimulator)
    assert _snapshot(system) == GOLDEN[key]


# ----------------------------------------------------------------------
# full-system semantic parity across shard counts
# ----------------------------------------------------------------------
def _matrix_config(protocol, recovery, shard_count):
    params = {}
    if protocol == "fbl":
        params = {"f": 2}
    elif protocol == "coordinated":
        params = {"snapshot_every": 8}
    return SystemConfig(
        n=6,
        seed=11,
        name=f"shard-parity-{protocol}-{recovery}-s{shard_count}",
        protocol=protocol,
        protocol_params=params,
        recovery=recovery,
        workload="uniform",
        workload_params={"hops": 24, "fanout": 2},
        crashes=[crash_at(2, 0.05)],
        checkpoint_every=6,
        sanitize=True,
        cost_ledger=True,
        detection_delay=0.5,
        shard_count=shard_count,
    )


@pytest.mark.parametrize("protocol,recovery", COMBOS,
                         ids=[f"{p}-{r}" for p, r in COMBOS])
def test_semantic_fingerprint_invariant_across_shard_counts(protocol, recovery):
    """The paper's invariants survive any shard layout: consistency,
    sanitizer cleanliness, liveness, complete episodes, progress, and
    byte-exact cost conservation, with identical semantic fingerprints
    at 1, 2, and 4 shards."""
    fingerprints = {}
    for shards in SHARD_COUNTS:
        system = build_system(_matrix_config(protocol, recovery, shards))
        result = system.run()
        assert result.consistent, (
            f"{shards} shards: oracle violations {result.oracle_violations[:3]}"
        )
        sanitizer = result.extra["sanitizer"]
        assert sanitizer["clean"], (
            f"{shards} shards: sanitizer violations "
            f"{[v['invariant'] for v in sanitizer['violations'][:3]]}"
        )
        assert result.extra["cost"]["conserved"], (
            f"{shards} shards: cost ledger not conserved"
        )
        fingerprints[shards] = semantic_fingerprint(result)
    baseline = fingerprints[SHARD_COUNTS[0]]
    for shards, fp in fingerprints.items():
        assert fp == baseline, (
            f"{protocol}/{recovery}: semantic fingerprint diverged at "
            f"{shards} shards: {fp} != {baseline}"
        )


def test_sharded_system_run_is_deterministic():
    """Same (seed, shard_count) twice -> identical strict results."""

    def strict(shards):
        r = build_system(_matrix_config("fbl", "nonblocking", shards)).run()
        return (
            r.end_time,
            dict(r.network.messages),
            dict(r.network.bytes),
            dict(r.digests),
            r.extra["events_processed"],
        )

    assert strict(3) == strict(3)


def test_sharded_run_reports_windows():
    system = build_system(_matrix_config("fbl", "nonblocking", 4))
    result = system.run()
    kernel = result.extra["kernel"]
    assert kernel["shards"] == 4
    assert kernel["windows"] > 0
