"""Unit tests for the three depinfo representations."""

import pytest

from repro.causality.dependency import (
    AntecedenceGraph,
    DependencyMatrix,
    DependencyStore,
    DependencyVector,
    make_depinfo,
)
from repro.causality.determinant import Determinant


def det(sender=0, ssn=0, receiver=1, rsn=0):
    return Determinant(sender=sender, ssn=ssn, receiver=receiver, rsn=rsn)


ALL_KINDS = ["vector", "matrix", "graph"]


@pytest.fixture(params=ALL_KINDS)
def store(request):
    return make_depinfo(request.param)


class TestCommonInterface:
    """Every representation must satisfy the same contract -- the paper's
    recovery algorithm is representation-agnostic."""

    def test_record_new_returns_true(self, store):
        assert store.record(det()) is True
        assert store.record(det()) is False

    def test_contains(self, store):
        d = det()
        store.record(d)
        assert d in store
        assert det(ssn=9, rsn=9) not in store

    def test_determinants_sorted(self, store):
        d2 = det(rsn=2, ssn=2)
        d1 = det(rsn=1, ssn=1)
        store.record(d2)
        store.record(d1)
        assert store.determinants() == [d1, d2]

    def test_for_receiver(self, store):
        store.record(det(receiver=1, rsn=0))
        store.record(det(receiver=1, rsn=1, ssn=1))
        store.record(det(receiver=2, rsn=0, ssn=2))
        orders = store.for_receiver(1)
        assert set(orders) == {0, 1}
        assert orders[1].ssn == 1

    def test_max_rsn(self, store):
        assert store.max_rsn(1) == -1
        store.record(det(rsn=4))
        assert store.max_rsn(1) == 4

    def test_merge_counts_new(self, store):
        added = store.merge([det(rsn=0), det(rsn=1, ssn=1), det(rsn=0)])
        assert added == 2
        assert len(store) == 2

    def test_wire_round_trip(self, store):
        store.record(det(rsn=0))
        store.record(det(rsn=1, ssn=1))
        other = make_depinfo(type(store).kind)
        other.load_wire(store.to_wire())
        assert other.determinants() == store.determinants()

    def test_clear(self, store):
        store.record(det())
        store.clear()
        assert len(store) == 0

    def test_wire_bytes(self, store):
        store.record(det())
        assert store.wire_bytes == 32


class TestDependencyVector:
    def test_vector_view(self):
        store = DependencyVector()
        store.record(det(receiver=1, rsn=3))
        store.record(det(receiver=2, rsn=7, ssn=1))
        assert store.vector() == {1: 3, 2: 7}


class TestDependencyMatrix:
    def test_channel_query(self):
        store = DependencyMatrix()
        store.record(det(sender=0, ssn=1, receiver=1, rsn=1))
        store.record(det(sender=0, ssn=0, receiver=1, rsn=0))
        store.record(det(sender=2, ssn=0, receiver=1, rsn=2))
        channel = store.channel(0, 1)
        assert [d.ssn for d in channel] == [0, 1]


class TestAntecedenceGraph:
    def test_program_order_edges(self):
        graph = AntecedenceGraph()
        d0 = det(rsn=0)
        d1 = det(rsn=1, ssn=1)
        graph.record(d1)  # out of order on purpose
        graph.record(d0)
        assert graph.antecedents(d1) == [d0]
        assert graph.descendants(d0) == [d1]

    def test_send_edges_transitive(self):
        graph = AntecedenceGraph()
        # p delivers m (0), then sends m' which q delivers (1); q then
        # sends m'' which r delivers (2) -- the paper's Figure 1 chain
        m = det(sender=9, ssn=0, receiver=0, rsn=0)
        m_prime = det(sender=0, ssn=0, receiver=1, rsn=0)
        m_dprime = det(sender=1, ssn=0, receiver=2, rsn=0)
        graph.add_send_edge(m, m_prime)
        graph.add_send_edge(m_prime, m_dprime)
        assert graph.antecedents(m_dprime) == sorted([m, m_prime])
        assert graph.descendants(m) == sorted([m_prime, m_dprime])

    def test_no_antecedents_for_root(self):
        graph = AntecedenceGraph()
        d = det()
        graph.record(d)
        assert graph.antecedents(d) == []


def test_make_depinfo_rejects_unknown():
    with pytest.raises(ValueError):
        make_depinfo("nope")


def test_registry_contains_all():
    assert set(DependencyStore.KINDS) == set(ALL_KINDS)
