"""Torture scenarios: pathological failure schedules.

These stress the corner cases the proofs care about: repeated crashes of
one process, rolling failures across the whole membership, crashes of
*blocked* processes, and the failure-budget boundary (more concurrent
failures than f).
"""

import pytest

from repro import build_system, crash_at, crash_on

from helpers import small_config


def test_same_node_crashes_three_times():
    config = small_config(
        n=5, hops=80, workload_params={"hops": 80, "fanout": 2},
        crashes=[crash_at(2, 0.02), crash_at(2, 2.0), crash_at(2, 4.0)],
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    assert system.nodes[2].incarnation == 3
    assert len(result.recovery_durations()) == 3


def test_rolling_failures_across_membership():
    """Every node fails once, spaced out so recoveries do not overlap."""
    config = small_config(
        n=5, f=2, hops=200, workload_params={"hops": 200, "fanout": 2},
        crashes=[crash_at(node, 0.02 + node * 1.5) for node in range(5)],
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    assert len(result.recovery_durations()) == 5
    assert all(node.incarnation == 1 for node in system.nodes)


def test_blocked_process_crashes_under_blocking_recovery():
    """A live process stalls for someone else's recovery, then dies
    itself: the blocked interval must close and both must recover."""
    config = small_config(
        n=5, recovery="blocking", hops=40,
        crashes=[
            crash_at(1, 0.02),
            # node 3 dies while blocked (right after receiving the request)
            crash_on(3, "node", "block", match_node=3, delay=0.001),
        ],
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    assert len(result.recovery_durations()) == 2
    # no interval is left open
    assert all(iv.end is not None for iv in system.metrics.block_intervals)


def test_crash_during_checkpoint_write():
    """A crash with the periodic checkpoint write still in flight must
    fall back to the previous durable checkpoint."""
    config = small_config(
        n=4, hops=40, checkpoint_every=3,
        workload_params={"hops": 40, "fanout": 2},
        # crash node 2 immediately after it *starts* a checkpoint (the
        # write takes ~0.1 s of storage time, so it cannot be durable)
        crashes=[crash_on(2, "node", "checkpoint", match_node=2,
                          occurrence=3, immediate=True)],
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    assert len(result.recovery_durations()) == 1


def test_recovering_node_crashes_again_mid_replay():
    config = small_config(
        n=5, hops=40,
        crashes=[
            crash_at(2, 0.02),
            crash_on(2, "replay", "start", match_node=2, immediate=True),
        ],
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    assert system.nodes[2].incarnation == 2
    assert system.nodes[2].is_live


def test_beyond_failure_budget_is_detected_or_survived():
    """With f = 1 and two truly concurrent failures, FBL's guarantee is
    void.  The system must either still recover consistently (the
    determinants happened to survive) or fail loudly with a replay gap --
    never recover into silent inconsistency."""
    config = small_config(
        n=5, f=1, hops=40,
        crashes=[crash_at(1, 0.03), crash_at(3, 0.031)],
        max_events=3_000_000,
    )
    system = build_system(config)
    try:
        result = system.run()
    except RuntimeError as error:
        assert "replay gap" in str(error) or "determinant lost" in str(error)
    else:
        assert result.consistent


def test_whole_system_crash_with_manetho():
    """f = n: every single process fails at once; stable-storage
    determinant logs carry the recovery."""
    config = small_config(
        n=4, protocol="manetho", hops=30,
        crashes=[crash_at(node, 0.05) for node in range(4)],
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    assert len(result.recovery_durations()) == 4
    assert all(node.is_live for node in system.nodes)


def test_crash_storm_with_outputs_and_gc():
    """Everything at once: periodic checkpoints + GC, output commits,
    and two overlapping failures."""
    config = small_config(
        n=6, f=2, checkpoint_every=5,
        workload_params={"hops": 60, "fanout": 2, "output_every": 4},
        crashes=[crash_at(1, 0.05), crash_at(4, 0.06)],
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    assert result.outputs_committed > 0
    ids = [record.output_id for record in system.output_device.outputs]
    assert len(ids) == len(set(ids))
    pending = sum(
        len(getattr(node.protocol, "_pending_outputs", []))
        for node in system.nodes
    )
    assert pending == 0
