"""Integration matrix: every protocol x recovery pairing, with and
without failures, across workloads, must run to quiescence consistently."""

import pytest

from repro import build_system, crash_at

from helpers import small_config

PAIRINGS = [
    ("fbl", "nonblocking"),
    ("fbl", "blocking"),
    ("sender_based", "nonblocking"),
    ("sender_based", "blocking"),
    ("manetho", "nonblocking"),
    ("manetho", "blocking"),
    ("pessimistic", "local"),
    ("optimistic", "optimistic"),
    ("coordinated", "coordinated"),
]

WORKLOADS = [
    ("uniform", {"hops": 20, "fanout": 2}),
    ("token_ring", {"hops": 30, "tokens": 2}),
    ("client_server", {"requests": 6}),
    ("all_to_all", {"hops": 6}),
]


def make(protocol, recovery, workload="uniform", workload_params=None, crashes=(), **kw):
    params = {}
    if protocol == "fbl":
        params = {"f": 2}
    elif protocol == "coordinated":
        params = {"snapshot_every": 8}
    return small_config(
        protocol=protocol,
        recovery=recovery,
        protocol_params=params,
        workload=workload,
        workload_params=workload_params or {"hops": 20, "fanout": 2},
        crashes=list(crashes),
        **kw,
    )


@pytest.mark.parametrize("protocol,recovery", PAIRINGS)
def test_failure_free_quiesces_consistently(protocol, recovery):
    system = build_system(make(protocol, recovery))
    result = system.run()
    assert result.consistent
    assert result.final_progress > 0
    assert all(node.is_live for node in system.nodes)


@pytest.mark.parametrize("protocol,recovery", PAIRINGS)
def test_single_failure_recovers(protocol, recovery):
    system = build_system(
        make(protocol, recovery, crashes=[crash_at(node=2, time=0.03)])
    )
    result = system.run()
    assert result.consistent
    assert len(result.recovery_durations()) >= 1
    assert all(node.is_live for node in system.nodes)


@pytest.mark.parametrize("protocol,recovery", [
    ("fbl", "nonblocking"),
    ("fbl", "blocking"),
    ("manetho", "nonblocking"),
    ("pessimistic", "local"),
    ("optimistic", "optimistic"),
    ("coordinated", "coordinated"),
])
def test_two_failures_recover(protocol, recovery):
    system = build_system(
        make(
            protocol,
            recovery,
            crashes=[crash_at(node=1, time=0.03), crash_at(node=3, time=0.04)],
        )
    )
    result = system.run()
    assert result.consistent
    assert all(node.is_live for node in system.nodes)


@pytest.mark.parametrize("workload,params", WORKLOADS)
def test_workloads_under_failure_fbl_nonblocking(workload, params):
    system = build_system(
        make(
            "fbl",
            "nonblocking",
            workload=workload,
            workload_params=params,
            crashes=[crash_at(node=2, time=0.02)],
        )
    )
    result = system.run()
    assert result.consistent
    assert all(node.is_live for node in system.nodes)


@pytest.mark.parametrize("seed", range(5))
def test_seeds_do_not_break_consistency(seed):
    system = build_system(
        make("fbl", "nonblocking", crashes=[crash_at(node=2, time=0.03)], seed=seed)
    )
    result = system.run()
    assert result.consistent


def test_identical_seeds_identical_runs():
    """Full determinism: same config + seed => identical digests and
    identical message counts."""
    a = build_system(make("fbl", "nonblocking", crashes=[crash_at(2, 0.03)], seed=7))
    b = build_system(make("fbl", "nonblocking", crashes=[crash_at(2, 0.03)], seed=7))
    ra, rb = a.run(), b.run()
    assert ra.digests == rb.digests
    assert ra.network.messages == rb.network.messages
    assert ra.end_time == rb.end_time


def test_different_seeds_differ():
    a = build_system(make("fbl", "nonblocking", seed=1)).run()
    b = build_system(make("fbl", "nonblocking", seed=2)).run()
    # latency jitter differs, so at minimum timing differs
    assert a.end_time != b.end_time


def test_crash_of_every_node_position():
    """No node id is special (except in the workload's topology)."""
    for victim in range(5):
        system = build_system(
            make("fbl", "nonblocking", n=5, crashes=[crash_at(victim, 0.03)])
        )
        result = system.run()
        assert result.consistent, f"victim {victim} broke consistency"
        assert all(node.is_live for node in system.nodes)


def test_crash_during_replay_of_other_recovery():
    """Third-order scenario: a node crashes while another node's replay
    is still in flight."""
    from repro import crash_on

    system = build_system(
        make(
            "fbl",
            "nonblocking",
            crashes=[
                crash_at(node=1, time=0.03),
                crash_on(3, "replay", "start", match_node=1, immediate=True),
            ],
        )
    )
    result = system.run()
    assert result.consistent
    assert all(node.is_live for node in system.nodes)
