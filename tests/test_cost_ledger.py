"""The communication-cost ledger: conservation, purity, merge parity.

The keystone property is **byte conservation**: every account the
ledger keeps is charged at exactly the statements that mutate the
pre-existing network/storage stats, so account sums must equal those
totals *to the byte* -- across every protocol family, both recovery
algorithms of the paper, group commit, compaction, and lossy links.

The second property is **purity**: the ledger and its time-series
sampler are host-side bookkeeping, so enabling them must reproduce the
seed goldens byte-identically (same event count, same timestamps, same
digests), exactly like spans and the profiler.
"""

import json

import pytest

from repro import build_system
from repro.core.config import FaultConfig, StorageRealismConfig
from repro.experiments import failure_during_recovery, single_failure
from repro.obs import (
    PURPOSES,
    CostLedger,
    classify_storage,
    classify_wire,
    merge_cost_dumps,
)
from repro.procs.failure import crash_at
from repro.runner import TrialRunner, TrialSpec, merge_cost, merge_metrics

from helpers import small_config
from test_seed_regression import BUILDERS, GOLDEN, snapshot

PARALLEL_JOBS = 4

#: every protocol family x its natural recovery manager, plus the
#: paper's blocking alternative for fbl
MATRIX = [
    ("fbl", "nonblocking"),
    ("fbl", "blocking"),
    ("sender_based", "nonblocking"),
    ("manetho", "nonblocking"),
    ("pessimistic", "local"),
    ("optimistic", "optimistic"),
    ("coordinated", "coordinated"),
]


def _cost_config(protocol, recovery, **overrides):
    """A crashing scenario with periodic checkpoints, ledger on."""
    return small_config(
        protocol=protocol,
        recovery=recovery,
        crashes=[crash_at(node=2, time=0.05)],
        checkpoint_every=overrides.pop("checkpoint_every", 3),
        cost_ledger=True,
        timeseries_window=overrides.pop("timeseries_window", 0.02),
        **overrides,
    )


# ----------------------------------------------------------------------
# classifiers
# ----------------------------------------------------------------------
def test_classify_wire_taxonomy():
    assert classify_wire("application", "app") == "app-payload"
    assert classify_wire("protocol", "msg_ack") == "control-plane"
    assert classify_wire("protocol", "retransmit_data") == "recovery-data"
    assert classify_wire("protocol", "det_push") == "determinant-log"
    assert classify_wire("protocol", "gc_notice") == "gc-metadata"
    assert classify_wire("recovery", "ord_request") == "control-plane"
    assert classify_wire("recovery", "recovery_reply") == "recovery-data"
    assert classify_wire("recovery", "depinfo_reply") == "recovery-data"
    assert classify_wire("storage", "det_write") == "determinant-log"
    assert classify_wire("transport", "ack") == "control-plane"


def test_classify_storage_taxonomy():
    assert classify_storage("checkpoint:3:2") == "checkpoint"
    assert classify_storage("round:5:1") == "checkpoint"
    assert classify_storage("recovery_reply:4:1") == "recovery-data"
    assert classify_storage("committed:2") == "control-plane"
    assert classify_storage("determinants", is_log=True) == "determinant-log"


def test_every_classifier_output_is_in_the_taxonomy():
    for kind in ("application", "protocol", "recovery", "storage", "transport"):
        for mtype in ("app", "msg_ack", "retransmit_data", "det_push",
                      "gc_notice", "stable_info", "ord_request",
                      "recovery_reply", "depinfo_reply", "whatever"):
            assert classify_wire(kind, mtype) in PURPOSES
    for name in ("checkpoint:1:1", "round:2:0", "recovery_reply:1:2",
                 "committed:0", "gather:3", "anything"):
        assert classify_storage(name) in PURPOSES
        assert classify_storage(name, is_log=True) in PURPOSES


# ----------------------------------------------------------------------
# byte conservation (the keystone)
# ----------------------------------------------------------------------
def _assert_conserved(system, result):
    cost = result.extra["cost"]
    conservation = cost["conservation"]
    assert conservation["conserved"], conservation
    # spot-check the equalities the flag summarizes
    stats = system.network.stats
    assert conservation["wire_bytes"]["ledger"] == (
        stats.total_bytes() + stats.retransmit_bytes
    )
    assert conservation["wire_messages"]["ledger"] == stats.total_messages()
    total_storage = sum(
        node.storage.stats.bytes_read + node.storage.stats.bytes_written
        for node in system.nodes
    )
    assert conservation["storage_bytes"]["ledger"] == total_storage
    # the roll-up is JSON-able (the CLI and CI artifact depend on it)
    json.dumps(cost)


@pytest.mark.parametrize("protocol,recovery", MATRIX)
def test_byte_conservation_across_protocol_matrix(protocol, recovery):
    system = build_system(_cost_config(protocol, recovery))
    result = system.run()
    assert result.consistent
    _assert_conserved(system, result)
    cost = result.extra["cost"]
    assert cost["episodes"] >= 1
    # a crash ran: some bytes must be attributed to a recovery phase
    assert any(
        phase.startswith("recovery-") for phase in cost["wire"]["by_phase"]
    )


def test_conservation_with_group_commit_and_compaction():
    """Batched flushes charge one device op; compaction credits GC."""
    # pessimistic logs every determinant, so appends actually batch
    config = _cost_config(
        "pessimistic",
        "local",
        storage_realism=StorageRealismConfig(
            incremental_checkpoints=True,
            group_commit=True,
            batch_window=0.005,
            log_compaction=True,
        ),
    )
    system = build_system(config)
    result = system.run()
    _assert_conserved(system, result)
    cost = result.extra["cost"]
    assert cost["gc"]["total_bytes"] > 0
    assert sum(n.storage.stats.batch_flushes for n in system.nodes) > 0
    assert cost["storage"]["by_purpose"]["determinant-log"] > 0


def test_conservation_with_lossy_links_charges_retransmits():
    config = _cost_config(
        "fbl",
        "nonblocking",
        transport="reliable",
        transport_params={"max_retries": 30},
        faults=FaultConfig(loss_prob=0.05),
    )
    system = build_system(config)
    result = system.run()
    _assert_conserved(system, result)
    cost = result.extra["cost"]
    assert cost["wire"]["retransmits"] > 0
    assert cost["wire"]["by_purpose"]["retransmit"] > 0


# ----------------------------------------------------------------------
# purity: goldens stay byte-identical with the ledger on
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", sorted(BUILDERS))
def test_goldens_identical_with_ledger_and_sampler_on(key):
    scenario = {
        "e1-nonblocking": lambda: single_failure(
            recovery="nonblocking", cost_ledger=True, timeseries_window=0.01),
        "e1-blocking": lambda: single_failure(
            recovery="blocking", cost_ledger=True, timeseries_window=0.01),
        "e2-nonblocking": lambda: failure_during_recovery(
            recovery="nonblocking", cost_ledger=True, timeseries_window=0.01),
        "e2-blocking": lambda: failure_during_recovery(
            recovery="blocking", cost_ledger=True, timeseries_window=0.01),
    }[key]
    assert snapshot(scenario()) == GOLDEN[key]


def test_ledger_adds_no_simulated_events():
    plain = single_failure(recovery="nonblocking").run()
    costed = single_failure(
        recovery="nonblocking", cost_ledger=True, timeseries_window=0.01
    ).run()
    assert costed.extra["events_processed"] == plain.extra["events_processed"]
    assert costed.end_time == plain.end_time
    assert costed.digests == plain.digests


# ----------------------------------------------------------------------
# phases
# ----------------------------------------------------------------------
def test_phase_attribution_failure_free_run_has_one_phase():
    system = build_system(small_config(cost_ledger=True))
    result = system.run()
    cost = result.extra["cost"]
    assert cost["episodes"] == 0
    assert list(cost["wire"]["by_phase"]) == ["failure-free"]


def test_two_episodes_get_distinct_phases():
    result = failure_during_recovery(
        recovery="nonblocking", cost_ledger=True
    ).run()
    cost = result.extra["cost"]
    assert cost["episodes"] == 2
    phases = set(cost["wire"]["by_phase"])
    assert "recovery-1" in phases and "recovery-2" in phases
    # failure-free sorts first in the roll-up
    assert next(iter(cost["wire"]["by_phase"])) == "failure-free"


# ----------------------------------------------------------------------
# time-series sampler
# ----------------------------------------------------------------------
def test_sampler_windows_sum_to_ledger_totals():
    system = build_system(_cost_config("fbl", "nonblocking"))
    result = system.run()
    samples = result.extra["timeseries"]
    cost = result.extra["cost"]
    assert samples
    assert sum(s["wire_bytes"] for s in samples) == cost["wire"]["total_bytes"]
    assert sum(s["storage_bytes"] for s in samples) == cost["storage"]["total_bytes"]
    assert sum(s["storage_ops"] for s in samples) == cost["storage"]["ops"]
    per_purpose = {}
    for sample in samples:
        for purpose, nbytes in sample["wire"].items():
            per_purpose[purpose] = per_purpose.get(purpose, 0) + nbytes
    assert per_purpose == {
        k: v for k, v in cost["wire"]["by_purpose"].items() if v
    }


def test_sampler_memory_is_bounded_by_downsampling():
    config = _cost_config(
        "fbl", "nonblocking", timeseries_window=0.0005,
        timeseries_max_samples=16,
    )
    system = build_system(config)
    result = system.run()
    samples = result.extra["timeseries"]
    assert len(samples) <= 16
    # downsampling doubled the window; each sample records its own width
    assert max(s["window"] for s in samples) > 0.0005
    # and the coarsened curve still conserves bytes
    assert (
        sum(s["wire_bytes"] for s in samples)
        == result.extra["cost"]["wire"]["total_bytes"]
    )


def test_sampler_validates_knobs():
    import pytest as _pytest

    from repro.obs import CostSampler

    with _pytest.raises(ValueError):
        CostSampler(CostLedger(), window=0.0)
    with _pytest.raises(ValueError):
        CostSampler(CostLedger(), window=0.1, max_samples=1)


def test_chrome_export_builds_counter_tracks_from_samples():
    from repro.analysis.chrome import chrome_trace_events

    system = build_system(_cost_config("fbl", "nonblocking"))
    system.run()
    events = chrome_trace_events(system.trace)
    counters = [e for e in events if e["ph"] == "C"]
    wire = [e for e in counters if e["name"].startswith("wire")]
    assert wire and all(e["ts"] >= 0 for e in wire)
    # every wire counter event carries the same purpose series (Perfetto
    # needs aligned keys to stack them)
    keys = {tuple(sorted(e["args"])) for e in wire}
    assert len(keys) == 1
    # the counter track conserves bytes with the ledger
    total = sum(sum(e["args"].values()) for e in wire)
    assert total == system.cost.wire_bytes_total


# ----------------------------------------------------------------------
# flamegraph export
# ----------------------------------------------------------------------
def test_flame_lines_attribute_bytes_down_the_span_tree():
    config = _cost_config("fbl", "nonblocking", spans=True)
    system = build_system(config)
    result = system.run()
    lines = system.cost.flame_lines()
    assert lines
    total = 0
    for line in lines:
        stack, _, size = line.rpartition(" ")
        frames = stack.split(";")
        assert frames[0].startswith("node ")
        assert frames[-1] in PURPOSES
        total += int(size)
    # flame stacks cover exactly the wire + storage charges (gc credits
    # are bookkeeping, not transferred bytes)
    cost = result.extra["cost"]
    assert total == cost["wire"]["total_bytes"] + cost["storage"]["total_bytes"]
    # recovery charges hang under recovery spans somewhere in the profile
    assert any("recovery" in line for line in lines)


# ----------------------------------------------------------------------
# runner dump / merge parity (any job count)
# ----------------------------------------------------------------------
def _fleet():
    specs = []
    for seed in range(3):
        # pessimistic batches log appends (feeding the batch histograms);
        # fbl covers the checkpoint-only storage profile
        for protocol, recovery in (("pessimistic", "local"), ("fbl", "blocking")):
            config = _cost_config(
                protocol, recovery,
                storage_realism=StorageRealismConfig(
                    group_commit=True, batch_window=0.005
                ),
            )
            specs.append(TrialSpec(
                config=config, seed=seed, label=f"{recovery}-{seed}",
            ))
    return specs


def test_ledger_merge_identical_at_any_job_count():
    serial = TrialRunner(jobs=1).run(_fleet())
    parallel = TrialRunner(jobs=PARALLEL_JOBS).run(_fleet())
    merged_serial = merge_cost(serial)
    merged_parallel = merge_cost(parallel)
    assert merged_serial.dump() == merged_parallel.dump()
    assert merged_serial.summary() == merged_parallel.summary()
    # the merged ledger really is the sum of its parts
    assert merged_serial.wire_bytes_total == sum(
        t.cost["wire_bytes_total"] for t in serial
    )


def test_histogram_dump_merge_identical_at_any_job_count():
    """Histogram instruments (batch sizes, queue waits) keep raw samples
    through dump/merge, so percentiles match at any job count."""
    serial = TrialRunner(jobs=1).run(_fleet())
    parallel = TrialRunner(jobs=PARALLEL_JOBS).run(_fleet())
    snap_serial = merge_metrics(serial).snapshot()
    snap_parallel = merge_metrics(parallel).snapshot()
    assert snap_serial == snap_parallel
    hist = snap_serial["storage.batch_size_ops"]
    assert hist["count"] > 0
    assert hist["p50"] >= 1


def test_merge_cost_skips_costless_trials_and_handles_none():
    costless = TrialRunner(jobs=1).run(
        [TrialSpec(config=small_config(), label="plain")]
    )
    assert costless[0].cost is None
    assert merge_cost(costless) is None
    mixed = costless + TrialRunner(jobs=1).run(
        [TrialSpec(config=_cost_config("fbl", "nonblocking"), label="costed")]
    )
    merged = merge_cost(mixed)
    assert merged is not None and merged.wire_bytes_total > 0


def test_merge_cost_dumps_folds_counters_and_flame():
    a, b = CostLedger(), CostLedger()
    a.charge_wire(0.0, 1, 2, "application", "app", 100, 10, 0, False)
    b.charge_wire(0.0, 1, 2, "application", "app", 50, 10, 0, False)
    b.charge_gc(0.0, 1, 7)
    merged = merge_cost_dumps([a.dump(), b.dump()])
    assert merged.wire_bytes_total == 150
    assert merged.gc_bytes_total == 7
    assert merged.wire_purpose_bytes["app-payload"] == 130  # bodies only
    key = ("wire", 1, 2, "app-payload", "failure-free")
    assert merged.accounts[key] == [2, 130]
