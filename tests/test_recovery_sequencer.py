"""Unit tests for the sequencer (ordinal service)."""

from repro.net.latency import ConstantLatency
from repro.net.network import Message, MessageKind, Network
from repro.net.topology import full_mesh
from repro.recovery.sequencer import Sequencer
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


def make(n=4):
    sim = Simulator()
    trace = TraceRecorder()
    net = Network(sim, full_mesh(n + 1), latency=ConstantLatency(0.001), trace=trace)
    seq = Sequencer(n, sim, net, trace)
    seq.start()
    return sim, net, seq


def send(net, src, dst, mtype, payload=None):
    net.send(Message(src=src, dst=dst, kind=MessageKind.RECOVERY,
                     mtype=mtype, payload=payload or {}))


def collect(net, node_id):
    inbox = []
    net.register(node_id, inbox.append)
    return inbox


def test_ordinals_are_monotone():
    sim, net, seq = make()
    inbox0, inbox1 = collect(net, 0), collect(net, 1)
    send(net, 0, 4, "ord_request")
    send(net, 1, 4, "ord_request")
    sim.run()
    assert inbox0[0].payload["ord"] == 1
    assert inbox1[0].payload["ord"] == 2


def test_active_set_in_reply():
    sim, net, seq = make()
    collect(net, 0)
    inbox1 = collect(net, 1)
    send(net, 0, 4, "ord_request")
    sim.run()
    send(net, 1, 4, "ord_request")
    sim.run()
    active = inbox1[0].payload["active"]
    assert set(active) == {0, 1}
    assert active[0]["ord"] == 1
    assert not active[0]["served"]


def test_complete_retires_entry():
    sim, net, seq = make()
    collect(net, 0)
    send(net, 0, 4, "ord_request")
    sim.run()
    send(net, 0, 4, "recovery_complete", {"incarnation": 1, "epoch": 1})
    sim.run()
    assert seq.active == {}


def test_leader_done_marks_served():
    sim, net, seq = make()
    collect(net, 0)
    send(net, 0, 4, "ord_request")
    sim.run()
    # served maps peer -> the ordinal the leader served
    send(net, 0, 4, "leader_done", {"served": {0: 1}, "epoch": 1})
    sim.run()
    assert seq.active[0]["served"]


def test_stale_epoch_announcement_dropped():
    """A dead episode's announcement cannot touch the newer entry."""
    sim, net, seq = make()
    collect(net, 0)
    send(net, 0, 4, "ord_request")
    sim.run()
    send(net, 0, 4, "ord_request")  # re-crash: ord 2 supersedes ord 1
    sim.run()
    send(net, 0, 4, "leader_done", {"served": {0: 1}, "epoch": 1})
    sim.run()
    assert seq.stale_epoch_drops == 1
    assert not seq.active[0]["served"]


def test_re_request_supersedes():
    """A process that crashes again mid-recovery gets a fresh ordinal."""
    sim, net, seq = make()
    inbox0 = collect(net, 0)
    send(net, 0, 4, "ord_request")
    sim.run()
    send(net, 0, 4, "ord_request")
    sim.run()
    assert inbox0[-1].payload["ord"] == 2
    assert seq.active[0]["ord"] == 2


def test_status_request_returns_active_view():
    sim, net, seq = make()
    collect(net, 0)
    inbox1 = collect(net, 1)
    send(net, 0, 4, "ord_request")
    sim.run()
    send(net, 1, 4, "ord_status_request")
    sim.run()
    reply = inbox1[-1]
    assert reply.mtype == "status_reply"
    assert 0 in reply.payload["active"]


def test_unknown_message_ignored():
    sim, net, seq = make()
    send(net, 0, 4, "gibberish")
    sim.run()
    assert seq.active == {}
