"""Unit tests for timers."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer, Timer


def test_timer_fires_after_interval():
    sim = Simulator()
    fired = []
    Timer(sim, 2.0, fired.append, "x").start()
    sim.run()
    assert fired == ["x"]
    assert sim.now == 2.0


def test_timer_cancel_prevents_fire():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 2.0, fired.append, "x").start()
    timer.cancel()
    sim.run()
    assert fired == []


def test_timer_restart_resets_deadline():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 2.0, lambda: fired.append(sim.now)).start()
    sim.run(until=1.0)
    timer.restart()
    sim.run()
    assert fired == [3.0]


def test_timer_restart_with_new_interval():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 2.0, lambda: fired.append(sim.now)).start()
    timer.restart(interval=0.5)
    sim.run()
    assert fired == [0.5]


def test_timer_pending_and_fired_flags():
    sim = Simulator()
    timer = Timer(sim, 1.0, lambda: None)
    assert not timer.pending
    timer.start()
    assert timer.pending
    assert not timer.fired
    sim.run()
    assert not timer.pending
    assert timer.fired


def test_timer_double_start_rejected():
    sim = Simulator()
    timer = Timer(sim, 1.0, lambda: None).start()
    with pytest.raises(RuntimeError):
        timer.start()


def test_timer_negative_interval_rejected():
    with pytest.raises(ValueError):
        Timer(Simulator(), -1.0, lambda: None)


def test_timer_deadline():
    sim = Simulator()
    timer = Timer(sim, 3.0, lambda: None).start()
    assert timer.deadline == 3.0
    timer.cancel()
    assert timer.deadline is None


def test_periodic_timer_ticks_repeatedly():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now)).start()
    sim.run(until=5.5)
    timer.cancel()
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert timer.ticks == 5


def test_periodic_timer_cancel_stops_ticks():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(1)).start()
    sim.run(until=2.5)
    timer.cancel()
    sim.run()
    assert len(ticks) == 2


def test_periodic_timer_cancel_from_callback():
    sim = Simulator()
    timer = PeriodicTimer(sim, 1.0, lambda: timer.cancel())
    timer.start()
    sim.run()
    assert timer.ticks == 1
    assert not timer.running


def test_periodic_timer_zero_interval_rejected():
    with pytest.raises(ValueError):
        PeriodicTimer(Simulator(), 0.0, lambda: None)
