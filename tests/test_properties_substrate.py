"""Property-based tests on the simulation substrate itself.

The substrate's guarantees (deterministic event ordering, per-channel
FIFO delivery, storage-device serialization) are load-bearing for every
protocol above it, so they get direct adversarial testing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import Message, MessageKind, Network
from repro.net.topology import full_mesh
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.storage.stable import StableStorage


@settings(max_examples=40)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=40
    )
)
def test_kernel_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=40)
@given(
    labels=st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=30),
    delay=st.floats(min_value=0.0, max_value=5.0),
)
def test_kernel_same_instant_is_fifo(labels, delay):
    sim = Simulator()
    fired = []
    for label in labels:
        sim.schedule(delay, fired.append, label)
    sim.run()
    assert fired == labels


@settings(max_examples=30)
@given(
    count=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=1000),
    low=st.floats(min_value=0.0001, max_value=0.01),
    spread=st.floats(min_value=0.0, max_value=0.05),
)
def test_network_fifo_per_channel_under_jitter(count, seed, low, spread):
    """No matter how the latency jitters, a channel never reorders."""
    sim = Simulator()
    net = Network(
        sim,
        full_mesh(2),
        latency=UniformLatency(low, low + spread),
        rngs=RngRegistry(seed),
    )
    received = []
    net.register(1, lambda m: received.append(m.payload["i"]))
    for i in range(count):
        net.send(Message(src=0, dst=1, kind=MessageKind.APPLICATION,
                         mtype="app", payload={"i": i}))
    sim.run()
    assert received == list(range(count))


@settings(max_examples=30)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=20)
)
def test_storage_serializes_and_completes_in_order(sizes):
    sim = Simulator()
    storage = StableStorage(sim, owner=0, op_latency=0.001, bandwidth_bps=1e6)
    done = []
    for index, size in enumerate(sizes):
        storage.write(f"k{index}", index, size,
                      on_done=lambda index=index: done.append((index, sim.now)))
    sim.run()
    assert [index for index, _ in done] == list(range(len(sizes)))
    times = [t for _, t in done]
    assert times == sorted(times)
    # total busy time equals the sum of op durations
    expected = sum(0.001 + size / 1e6 for size in sizes)
    assert abs(storage.stats.busy_time - expected) < 1e-9


@settings(max_examples=20)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_identical_seeds_identical_network_timing(seed):
    def run():
        sim = Simulator()
        net = Network(sim, full_mesh(3), rngs=RngRegistry(seed))
        arrivals = []
        net.register(1, lambda m: arrivals.append(sim.now))
        for i in range(10):
            net.send(Message(src=0, dst=1, kind=MessageKind.APPLICATION,
                             mtype="app", payload={"i": i}))
        sim.run()
        return arrivals

    assert run() == run()


@settings(max_examples=20)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=0, max_value=100_000),
)
def test_latency_models_never_negative(seed, size):
    import random

    rng = random.Random(seed)
    from repro.net.latency import (
        AtmLinkModel,
        BandwidthLatency,
        ExponentialLatency,
    )

    for model in (
        ConstantLatency(0.001),
        UniformLatency(0.0, 0.01),
        ExponentialLatency(0.001, 0.002),
        BandwidthLatency(1e6, 0.0005, 0.0001, 0.2),
        AtmLinkModel(),
    ):
        assert model.sample(size, rng) >= 0.0
