"""docs/CONFIG.md must document every configuration field.

The reference page promises completeness; this test makes the promise
enforceable.  Adding a field to SystemConfig (or a sub-config) without
a row in docs/CONFIG.md fails here with the missing names.
"""

import dataclasses
import os
import re

import pytest

from repro.core.config import (
    AdaptiveConfig,
    FaultConfig,
    StorageRealismConfig,
    SystemConfig,
)

CONFIG_CLASSES = [SystemConfig, FaultConfig, StorageRealismConfig, AdaptiveConfig]

DOC_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "docs",
    "CONFIG.md",
)


def doc_text() -> str:
    with open(DOC_PATH, encoding="utf-8") as handle:
        return handle.read()


def documented_fields(text: str) -> set:
    """Field names documented as leading table cells: ``| `name` |``."""
    return set(re.findall(r"^\| `([A-Za-z_][A-Za-z0-9_]*)`", text, re.MULTILINE))


@pytest.mark.parametrize("config_class", CONFIG_CLASSES)
def test_every_config_field_is_documented(config_class):
    documented = documented_fields(doc_text())
    missing = {
        field.name for field in dataclasses.fields(config_class)
    } - documented
    assert not missing, (
        f"{config_class.__name__} fields missing from docs/CONFIG.md: "
        f"{sorted(missing)} -- add a table row for each"
    )


def test_documented_fields_exist():
    """No stale rows: every documented name is a real config field."""
    known = set()
    for config_class in CONFIG_CLASSES:
        known |= {field.name for field in dataclasses.fields(config_class)}
    stale = documented_fields(doc_text()) - known
    assert not stale, (
        f"docs/CONFIG.md documents unknown fields: {sorted(stale)} -- "
        f"remove the rows or fix the names"
    )


def test_doc_mentions_every_sub_config():
    text = doc_text()
    for config_class in CONFIG_CLASSES:
        assert config_class.__name__ in text
