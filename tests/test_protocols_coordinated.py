"""Tests for coordinated checkpointing and its global rollback."""

import pytest

from repro import build_system, crash_at

from helpers import small_config


def coordinated_config(n=5, snapshot_every=8, hops=40, **kw):
    return small_config(
        n=n, protocol="coordinated", recovery="coordinated",
        protocol_params={"snapshot_every": snapshot_every},
        workload="uniform", hops=hops, **kw,
    )


def run_system(config):
    system = build_system(config)
    result = system.run()
    return system, result


class TestSnapshotRounds:
    def test_rounds_commit_failure_free(self):
        system, result = run_system(coordinated_config())
        initiator = system.nodes[0].protocol
        assert initiator.rounds_committed >= 1
        for node in system.nodes:
            assert node.protocol.committed_round >= 1

    def test_round_zero_exists_for_everyone(self):
        system, result = run_system(coordinated_config())
        for node in system.nodes:
            assert node.storage.peek("round:0") is not None

    def test_snapshot_captures_consistent_cut(self):
        """At snap time channels are empty: total sent == total received
        in every snapshot record."""
        system, result = run_system(coordinated_config())
        rounds = range(1, system.nodes[0].protocol.committed_round + 1)
        for round_id in rounds:
            records = [n.storage.peek(f"round:{round_id}") for n in system.nodes]
            if any(r is None for r in records):
                continue
            sent = sum(sum(r["sent_count"].values()) for r in records)
            received = sum(sum(r["recv_count"].values()) for r in records)
            assert sent == received, f"round {round_id} cut is inconsistent"

    def test_holds_are_bounded(self):
        system, result = run_system(coordinated_config())
        for node in system.nodes:
            assert not node.protocol._holding


class TestRollback:
    def test_crash_rolls_everyone_back(self):
        config = coordinated_config(crashes=[crash_at(node=2, time=0.05)])
        system, result = run_system(config)
        assert len(result.recovery_durations()) == 1
        # rollback loses work at every process, not just the crashed one
        assert system.metrics.rolled_back_deliveries > 0

    def test_live_processes_blocked_during_rollback(self):
        """The intrusion: every live process stalls through a full
        stable-storage restore."""
        config = coordinated_config(crashes=[crash_at(node=2, time=0.05)])
        system, result = run_system(config)
        blocked = [
            result.blocked_time_by_node.get(n.node_id, 0.0)
            for n in system.nodes if n.node_id != 2
        ]
        assert all(b > 0 for b in blocked)

    def test_epochs_advance_on_rollback(self):
        config = coordinated_config(crashes=[crash_at(node=2, time=0.05)])
        system, result = run_system(config)
        epochs = {n.protocol.epoch for n in system.nodes}
        assert epochs == {1}

    def test_execution_resumes_after_rollback(self):
        config = coordinated_config(crashes=[crash_at(node=2, time=0.05)])
        system, result = run_system(config)
        # progress was re-made after the rollback and rounds resumed
        assert result.final_progress > 0
        assert all(n.is_live for n in system.nodes)

    def test_rollback_targets_common_committed_round(self):
        config = coordinated_config(crashes=[crash_at(node=2, time=0.3)])
        system, result = run_system(config)
        committed = {n.protocol.committed_round for n in system.nodes}
        assert len(committed) == 1

    def test_second_crash_rolls_back_again(self):
        config = coordinated_config(
            crashes=[crash_at(node=2, time=0.05), crash_at(node=3, time=3.0)],
            hops=60,
        )
        system, result = run_system(config)
        assert len(result.recovery_durations()) == 2
        assert all(n.is_live for n in system.nodes)
        assert {n.protocol.epoch for n in system.nodes} == {2}


class TestParameters:
    def test_snapshot_every_validated(self):
        from repro.protocols.coordinated import CoordinatedCheckpointing

        with pytest.raises(ValueError):
            CoordinatedCheckpointing(snapshot_every=0)

    def test_no_message_logging_overhead(self):
        system, result = run_system(coordinated_config())
        assert result.extra["piggyback_determinants"] == 0
        for node in system.nodes:
            assert node.storage.log_len(f"msglog:{node.node_id}") == 0
