"""Unit tests for latency models."""

import random

import pytest

from repro.net.latency import (
    AtmLinkModel,
    BandwidthLatency,
    ConstantLatency,
    ExponentialLatency,
    UniformLatency,
)


@pytest.fixture
def rng():
    return random.Random(1)


def test_constant_latency(rng):
    model = ConstantLatency(0.01)
    assert model.sample(0, rng) == 0.01
    assert model.sample(10_000, rng) == 0.01


def test_constant_latency_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1.0)


def test_uniform_latency_in_range(rng):
    model = UniformLatency(0.001, 0.002)
    for _ in range(100):
        assert 0.001 <= model.sample(100, rng) <= 0.002


def test_uniform_latency_rejects_bad_bounds():
    with pytest.raises(ValueError):
        UniformLatency(0.5, 0.1)


def test_exponential_latency_at_least_base(rng):
    model = ExponentialLatency(base=0.01, mean_extra=0.005)
    for _ in range(100):
        assert model.sample(100, rng) >= 0.01


def test_exponential_latency_zero_extra(rng):
    model = ExponentialLatency(base=0.01, mean_extra=0.0)
    assert model.sample(100, rng) == 0.01


def test_bandwidth_latency_scales_with_size(rng):
    model = BandwidthLatency(bandwidth_bps=8e6, propagation=0.001)
    small = model.sample(1_000, rng)
    large = model.sample(1_000_000, rng)
    assert large > small
    # 1 MB over 8 Mb/s = 1 second of transmission
    assert large == pytest.approx(0.001 + 1.0)


def test_bandwidth_latency_jitter_bounded(rng):
    model = BandwidthLatency(bandwidth_bps=8e6, propagation=0.001, jitter_fraction=0.5)
    base = 0.001 + 1_000 * 8 / 8e6
    for _ in range(100):
        value = model.sample(1_000, rng)
        assert base <= value <= base * 1.5 + 1e-12


def test_bandwidth_rejects_nonpositive():
    with pytest.raises(ValueError):
        BandwidthLatency(bandwidth_bps=0)


def test_atm_model_small_message_sub_millisecond(rng):
    model = AtmLinkModel()
    # control messages must be cheap relative to storage/detection: the
    # paper's "about milliseconds" claim rests on this
    for _ in range(50):
        assert model.sample(200, rng) < 0.002


def test_atm_model_bandwidth_is_155mbps():
    assert AtmLinkModel().bandwidth_bps == 155e6


def test_model_is_callable(rng):
    model = ConstantLatency(0.5)
    assert model(123, rng) == 0.5
