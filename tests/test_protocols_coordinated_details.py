"""Detailed unit tests for coordinated checkpointing internals:
epochs, held sends, future-epoch buffering, and round solicitation."""

import pytest

from repro import build_system, crash_at
from repro.net.network import Message, MessageKind

from helpers import small_config


def coordinated_config(snapshot_every=8, **kw):
    kw.setdefault("workload_params", {"hops": 40, "fanout": 2})
    return small_config(
        protocol="coordinated", recovery="coordinated",
        protocol_params={"snapshot_every": snapshot_every},
        workload="uniform", **kw,
    )


class TestEpochs:
    def test_stale_epoch_messages_dropped(self):
        system = build_system(coordinated_config())
        system.start()
        system.sim.run(until=0.05)
        node = system.nodes[0]
        node.protocol.epoch = 3
        before = node.app.delivered_count
        node.receive(Message(
            src=1, dst=0, kind=MessageKind.APPLICATION, mtype="app",
            payload={"data": {"hops": 0}, "epoch": 1}, incarnation=0, ssn=900,
        ))
        assert node.app.delivered_count == before
        system.sim.run()

    def test_future_epoch_messages_buffered(self):
        system = build_system(coordinated_config())
        system.start()
        system.sim.run(until=0.05)
        node = system.nodes[0]
        before = node.app.delivered_count
        node.receive(Message(
            src=1, dst=0, kind=MessageKind.APPLICATION, mtype="app",
            payload={"data": {"hops": 0}, "epoch": 7}, incarnation=0, ssn=901,
        ))
        assert node.app.delivered_count == before
        assert len(node.protocol._future_epoch) == 1
        system.sim.run()

    def test_epochs_strictly_increase_across_rollbacks(self):
        system = build_system(coordinated_config(
            crashes=[crash_at(1, 0.03), crash_at(3, 3.0)],
            workload_params={"hops": 80, "fanout": 2},
        ))
        result = system.run()
        assert result.consistent
        assert {n.protocol.epoch for n in system.nodes} == {2}


class TestHolds:
    def test_holds_capture_and_release_sends(self):
        system = build_system(coordinated_config())
        result = system.run()
        for node in system.nodes:
            assert not node.protocol._holding
            assert node.protocol._held_sends == []
            assert node.protocol.hold_time_total >= 0.0

    def test_initiator_hold_time_tracked(self):
        system = build_system(coordinated_config(snapshot_every=5,
                                                 workload_params={"hops": 60, "fanout": 2}))
        system.run()
        committed = system.nodes[0].protocol.rounds_committed
        if committed:
            held = sum(n.protocol.hold_time_total for n in system.nodes)
            assert held > 0.0


class TestSnapshots:
    def test_held_sends_in_snapshot_records(self):
        """Round 0 must carry the initial sends as pending output of the
        cut -- otherwise rollback to it deadlocks the system."""
        system = build_system(coordinated_config())
        system.start()
        for node in system.nodes:
            record = node.storage.peek("round:0")
            expected = node.app.workload.initial_sends(node.node_id, system.config.n)
            assert len(record["held_sends"]) == len(expected)
        system.sim.run()

    def test_round_counts_recorded(self):
        system = build_system(coordinated_config(snapshot_every=5,
                                                 workload_params={"hops": 60, "fanout": 2}))
        system.run()
        node = system.nodes[0]
        for round_id, count in node.protocol._round_counts.items():
            assert count >= 0

    def test_rollback_query_replies_report_seen_epoch(self):
        """Replies must carry the max epoch *seen*, closing the
        concurrent-rollback epoch-collision race."""
        system = build_system(coordinated_config())
        system.start()
        manager = system.nodes[0].recovery
        manager._max_seen_epoch = 9
        inbox = []
        system.network.deregister(1)
        system.network.register(1, inbox.append)
        manager.on_control(Message(
            src=1, dst=0, kind=MessageKind.RECOVERY, mtype="rollback_query",
        ))
        system.sim.run(until=0.01)
        replies = [m for m in inbox if m.mtype == "rollback_reply"]
        assert replies and replies[0].payload["rollback_epoch"] == 9
        system.sim.run()


class TestRoundSolicitation:
    def test_pending_output_requests_a_round(self):
        """Outputs pending after traffic quiesces must still commit."""
        system = build_system(coordinated_config(
            snapshot_every=1000,  # count trigger will never fire
            workload_params={"hops": 15, "fanout": 2, "output_every": 3},
        ))
        result = system.run()
        assert result.outputs_committed > 0
        pending = sum(len(n.protocol._pending_outputs) for n in system.nodes)
        assert pending == 0
