"""The paper's Figure 1 scenario, reproduced literally.

Three processes p, q, r.  Process p receives a message m, then sends m'
to q, which sends m'' to r.  Under FBL with f = 2:

* m' is a descendent of m; m'' a descendent of m';
* the receipt order of m is piggybacked on m' and on m'' and therefore
  recorded at q and r -- so "the receipt order of m need not be
  propagated further than r for f = 2";
* if p fails, the receipt order of m is available at q or r, and the
  data of m at its sender: p can recover;
* if p and q both fail, r still knows the receipt orders of m and m',
  and deterministic replay regenerates m' "for the benefit of the
  recovery of process q".
"""

import pytest

from repro import SystemConfig, build_system, crash_at
from repro.procs.process import Send
from repro.workloads.generators import Workload

# node ids for readability
S, P, Q, R = 0, 1, 2, 3  # S is the (unshown) sender of m


class Figure1Workload(Workload):
    """Exactly the paper's chain: S sends m to P; P sends m' to Q;
    Q sends m'' to R."""

    def initial_sends(self, node_id, n_nodes):
        if node_id == S:
            return [Send(dst=P, payload={"name": "m"}, body_bytes=64)]
        return []

    def on_deliver(self, node_id, n_nodes, rsn, sender, payload):
        if node_id == P and payload.get("name") == "m":
            return [Send(dst=Q, payload={"name": "m_prime"}, body_bytes=64)]
        if node_id == Q and payload.get("name") == "m_prime":
            return [Send(dst=R, payload={"name": "m_dprime"}, body_bytes=64)]
        return []


def figure1_config(crashes=(), recovery="nonblocking", f=2):
    config = SystemConfig(
        n=4,
        name="figure1",
        protocol="fbl",
        protocol_params={"f": f},
        recovery=recovery,
        crashes=list(crashes),
        detection_delay=0.5,
        state_bytes=100_000,
    )
    return config


def build_figure1(crashes=(), recovery="nonblocking", f=2):
    config = figure1_config(crashes, recovery, f)
    system = build_system(config)
    # swap in the literal Figure-1 workload
    for node in system.nodes:
        node.app.workload = Figure1Workload()
    return system


def test_chain_executes():
    system = build_figure1()
    result = system.run()
    assert system.nodes[P].app.delivery_history == [(S, 0)]
    assert system.nodes[Q].app.delivery_history == [(P, 0)]
    assert system.nodes[R].app.delivery_history == [(Q, 0)]


def test_receipt_order_of_m_propagates_to_q_and_r():
    """The piggybacking example of Section 2.1."""
    system = build_figure1()
    system.run()
    det_m = system.nodes[P].protocol.det_log.for_receiver(P)[0]
    assert det_m in system.nodes[Q].protocol.det_log
    assert det_m in system.nodes[R].protocol.det_log


def test_propagation_stops_at_r_for_f_2():
    """m's determinant is at 3 = f + 1 hosts (p, q, r); it is stable and
    will not be piggybacked further."""
    system = build_figure1()
    system.run()
    protocol_r = system.nodes[R].protocol
    det_m = protocol_r.det_log.for_receiver(P)[0]
    assert protocol_r._det_stable(det_m)


def test_p_recovers_from_single_failure():
    """Section 2.1: "process p has the necessary information to recover"."""
    system = build_figure1(crashes=[crash_at(P, 0.01)])
    result = system.run()
    assert result.consistent
    assert system.nodes[P].app.delivery_history == [(S, 0)]
    assert system.nodes[P].is_live


def test_p_and_q_recover_from_double_failure():
    """Section 2.1: with p and q failed, r supplies the receipt orders
    and p's deterministic replay regenerates m' for q."""
    system = build_figure1(crashes=[crash_at(P, 0.01), crash_at(Q, 0.01)])
    result = system.run()
    assert result.consistent
    assert system.nodes[P].app.delivery_history == [(S, 0)]
    assert system.nodes[Q].app.delivery_history == [(P, 0)]
    assert all(node.is_live for node in system.nodes)


def test_double_failure_under_blocking_baseline_too():
    system = build_figure1(
        crashes=[crash_at(P, 0.01), crash_at(Q, 0.01)], recovery="blocking"
    )
    result = system.run()
    assert result.consistent
    assert system.nodes[Q].app.delivery_history == [(P, 0)]


def test_digests_match_original_execution():
    """Replay must reproduce the exact pre-crash states (liveness)."""
    baseline = build_figure1()
    baseline.run()
    expected = {i: baseline.nodes[i].app.digest for i in (P, Q, R)}

    crashed = build_figure1(crashes=[crash_at(P, 0.01), crash_at(Q, 0.01)])
    result = crashed.run()
    assert result.consistent
    for i in (P, Q, R):
        assert crashed.nodes[i].app.digest == expected[i]
