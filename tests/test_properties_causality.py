"""Property-based tests on the causality substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.causality.dependency import make_depinfo
from repro.causality.determinant import Determinant
from repro.causality.vector_clock import VectorClock


# -- vector clocks -------------------------------------------------------
clock_dicts = st.dictionaries(
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=50),
    max_size=6,
)


@given(clock_dicts, clock_dicts)
def test_merge_is_least_upper_bound(a_dict, b_dict):
    a, b = VectorClock(a_dict), VectorClock(b_dict)
    merged = a.copy().merge(b)
    assert a <= merged
    assert b <= merged
    # no smaller clock dominates both
    for pid in merged.clocks:
        assert merged.get(pid) == max(a.get(pid), b.get(pid))


@given(clock_dicts, clock_dicts)
def test_merge_commutative(a_dict, b_dict):
    a, b = VectorClock(a_dict), VectorClock(b_dict)
    assert a.copy().merge(b) == b.copy().merge(a)


@given(clock_dicts)
def test_order_reflexive_on_copies(a_dict):
    a = VectorClock(a_dict)
    assert a <= a.copy()
    assert not a < a.copy()


@given(clock_dicts, clock_dicts, clock_dicts)
def test_order_transitive(a_dict, b_dict, c_dict):
    a, b, c = VectorClock(a_dict), VectorClock(b_dict), VectorClock(c_dict)
    if a <= b and b <= c:
        assert a <= c


@given(clock_dicts, clock_dicts)
def test_trichotomy_of_relations(a_dict, b_dict):
    """Exactly one of: a<b, b<a, a==b, a||b."""
    a, b = VectorClock(a_dict), VectorClock(b_dict)
    relations = [a < b, b < a, a == b, a.concurrent(b)]
    assert sum(relations) == 1


@given(clock_dicts)
def test_tick_strictly_advances(a_dict):
    a = VectorClock(a_dict)
    before = a.copy()
    a.tick(3)
    assert before < a


# -- determinants and depinfo stores --------------------------------------
determinants = st.builds(
    lambda sender, ssn, recv_off, rsn: Determinant(
        sender=sender, ssn=ssn, receiver=(sender + 1 + recv_off) % 10, rsn=rsn
    ),
    sender=st.integers(min_value=0, max_value=9),
    ssn=st.integers(min_value=0, max_value=40),
    recv_off=st.integers(min_value=0, max_value=8),
    rsn=st.integers(min_value=0, max_value=40),
)


@given(st.lists(determinants, max_size=40))
def test_determinant_round_trip_lists(dets):
    assert [Determinant.from_tuple(d.to_tuple()) for d in dets] == dets


@settings(max_examples=50)
@given(
    st.lists(determinants, max_size=30),
    st.sampled_from(["vector", "matrix", "graph"]),
)
def test_depinfo_stores_agree(dets, kind):
    """All three representations must expose identical determinant sets
    (the recovery algorithm is representation-agnostic)."""
    store = make_depinfo(kind)
    reference = make_depinfo("vector")
    store.merge(dets)
    reference.merge(dets)
    assert store.to_wire() == reference.to_wire()
    for receiver in {d.receiver for d in dets}:
        assert set(store.for_receiver(receiver)) == set(reference.for_receiver(receiver))
        assert store.max_rsn(receiver) == reference.max_rsn(receiver)


@settings(max_examples=50)
@given(st.lists(determinants, max_size=30), st.sampled_from(["vector", "matrix", "graph"]))
def test_depinfo_merge_idempotent(dets, kind):
    store = make_depinfo(kind)
    store.merge(dets)
    once = store.to_wire()
    store.merge(dets)
    assert store.to_wire() == once


@settings(max_examples=50)
@given(
    st.lists(determinants, max_size=20),
    st.lists(determinants, max_size=20),
    st.sampled_from(["vector", "matrix", "graph"]),
)
def test_depinfo_wire_union(a, b, kind):
    """Merging wires is set union over delivery slots."""
    left = make_depinfo(kind)
    left.merge(a)
    right = make_depinfo(kind)
    right.merge(b)
    combined = make_depinfo(kind)
    combined.load_wire(left.to_wire())
    combined.load_wire(right.to_wire())
    slots = {d.delivery_id for d in combined.determinants()}
    expected = {d.delivery_id for d in left.determinants()} | {
        d.delivery_id for d in right.determinants()
    }
    assert slots == expected
