"""Unit tests for the stable-storage model."""

import pytest

from repro.sim.kernel import Simulator
from repro.storage.stable import StableStorage


def make(op_latency=0.01, bandwidth=1_000_000.0):
    sim = Simulator()
    return sim, StableStorage(sim, owner=0, op_latency=op_latency, bandwidth_bps=bandwidth)


def test_write_takes_latency_plus_transfer():
    sim, storage = make(op_latency=0.01, bandwidth=1_000_000.0)
    done = []
    storage.write("x", 42, 1_000_000, on_done=lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.01 + 1.0)]
    assert storage.peek("x") == 42


def test_read_returns_written_value():
    sim, storage = make()
    storage.write("x", {"a": 1}, 100)
    values = []
    storage.read("x", 100, values.append)
    sim.run()
    assert values == [{"a": 1}]


def test_read_missing_returns_none():
    sim, storage = make()
    values = []
    storage.read("nope", 0, values.append)
    sim.run()
    assert values == [None]


def test_value_not_durable_until_write_completes():
    sim, storage = make(op_latency=1.0)
    storage.write("x", 1, 100)
    assert not storage.contains("x")
    sim.run()
    assert storage.contains("x")


def test_device_serializes_operations():
    """Two concurrent writes queue behind one another."""
    sim, storage = make(op_latency=1.0, bandwidth=1e12)
    done = []
    storage.write("a", 1, 0, on_done=lambda: done.append(("a", sim.now)))
    storage.write("b", 2, 0, on_done=lambda: done.append(("b", sim.now)))
    sim.run()
    assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]


def test_stats_track_ops_and_bytes():
    sim, storage = make()
    storage.write("a", 1, 500)
    storage.read("a", 500, lambda v: None)
    sim.run()
    assert storage.stats.writes == 1
    assert storage.stats.reads == 1
    assert storage.stats.bytes_written == 500
    assert storage.stats.bytes_read == 500
    assert storage.stats.operations == 2
    assert storage.stats.total_bytes == 1000


def test_sync_stall_charged_to_node():
    sim, storage = make(op_latency=0.5, bandwidth=1e12)
    storage.write("a", 1, 0, stall_node=3)
    sim.run()
    assert storage.stats.sync_stall_time[3] == pytest.approx(0.5)


def test_log_append_and_read():
    sim, storage = make(op_latency=0.001)
    for i in range(3):
        storage.log_append("mylog", i, 32)
    entries = []
    sim.run()
    storage.log_read("mylog", 32, entries.extend)
    sim.run()
    assert entries == [0, 1, 2]
    assert storage.log_len("mylog") == 3


def test_log_read_empty():
    sim, storage = make()
    entries = []
    storage.log_read("never", 32, lambda e: entries.append(list(e)))
    sim.run()
    assert entries == [[]]


def test_log_read_cost_scales_with_entries():
    sim, storage = make(op_latency=0.0, bandwidth=1000.0)
    for i in range(10):
        storage.log_append("l", i, 0)
    sim.run()
    finish = storage.log_read("l", 100, lambda e: None)
    # 10 entries * 100 bytes at 1000 B/s = 1 second
    assert finish - sim.now == pytest.approx(1.0)


def test_rejects_bad_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        StableStorage(sim, 0, op_latency=-1)
    with pytest.raises(ValueError):
        StableStorage(sim, 0, bandwidth_bps=0)
