"""Sanitizer tests: mutants are caught, clean runs stay clean and
byte-identical, and the schedule-perturbation differ agrees with itself.

Three layers:

* **Goldens** -- every protocol/recovery pairing from the integration
  matrix, with a crash, runs clean under ``sanitize=True`` and produces
  byte-identical digests, end time, and message counts to the same run
  without the monitor (the sanitizer only observes).
* **Seeded mutants** -- deliberately broken protocol behaviour (a
  dropped determinant flush, a delivery before its receipt-log write, an
  orphan delivery, an ack before the store, a block under non-blocking
  recovery) must each be caught at the violating event.
* **Differ** -- ``check_trial`` reports zero divergence on a correct
  protocol and surfaces per-replica health problems.
"""

import pytest

from repro import build_system, crash_at
from repro.core.config import SystemConfig
from repro.sanitizer.monitor import Sanitizer
from repro.sim.trace import TraceRecorder

from helpers import small_config
from test_integration_matrix import PAIRINGS, make


# ----------------------------------------------------------------------
# goldens: clean runs stay clean, and the monitor is invisible
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol,recovery", PAIRINGS)
def test_sanitized_run_is_clean_and_byte_identical(protocol, recovery):
    crashes = [crash_at(node=2, time=0.03)]
    base = build_system(make(protocol, recovery, crashes=crashes)).run()
    sanitized = build_system(
        make(protocol, recovery, crashes=crashes, sanitize=True)
    ).run()

    report = sanitized.extra["sanitizer"]
    assert report["clean"], report["violations"][:3]
    assert report["events_seen"] > 0
    # observing must not perturb the run in any way
    assert sanitized.digests == base.digests
    assert sanitized.end_time == base.end_time
    assert sanitized.network.messages == base.network.messages


def test_sanitizer_counts_checks_by_invariant():
    # outputs force determinant pushes (flush-for-output) and exercise
    # the commit-order gate alongside the causal checks
    result = build_system(
        make(
            "fbl",
            "nonblocking",
            crashes=[crash_at(2, 0.03)],
            workload_params={"hops": 20, "fanout": 2, "output_every": 3},
            checkpoint_every=10,
            sanitize=True,
        )
    ).run()
    checks = result.extra["sanitizer"]["checks"]
    assert checks.get("orphan-free", 0) > 0
    assert checks.get("det-complete", 0) > 0
    assert checks.get("commit-order", 0) > 0
    assert result.extra["sanitizer"]["clean"]


# ----------------------------------------------------------------------
# seeded mutants: real runs with deliberately broken protocol behaviour
# ----------------------------------------------------------------------
def test_manetho_dropped_determinant_flush_caught(monkeypatch):
    """Marking a determinant host-stable without the durable log write
    behind it must trip the write-order invariant at ``det_stable``."""
    from repro.protocols.fbl import STABLE_HOST
    from repro.protocols.manetho import ManethoLogging

    def mutant(self, det, msg):
        # drop the log_append entirely; claim stability anyway
        self._track(det)
        self.det_log.note_logged_at(det, STABLE_HOST)
        self._track(det)
        self._check_pending_outputs()

    monkeypatch.setattr(ManethoLogging, "_record_own_determinant", mutant)
    result = build_system(
        make("manetho", "nonblocking", sanitize=True)
    ).run()
    report = result.extra["sanitizer"]
    assert not report["clean"]
    violation = report["violations"][0]
    assert violation["invariant"] == "write-order"
    assert "host-stable" in violation["detail"]
    assert violation["time"] > 0.0


def test_pessimistic_deliver_before_log_caught(monkeypatch):
    """Delivering before the synchronous receipt-log write commits must
    trip the write-order invariant at the delivery itself."""
    from repro.protocols.pessimistic import PessimisticLogging

    def mutant(self, sender, ssn, data, body_bytes):
        # skip the stable write; deliver immediately
        self._next_log_rsn += 1
        self._deliver(sender, ssn, data, None)

    monkeypatch.setattr(PessimisticLogging, "_log_then_deliver", mutant)
    result = build_system(make("pessimistic", "local", sanitize=True)).run()
    report = result.extra["sanitizer"]
    assert not report["clean"]
    violation = report["violations"][0]
    assert violation["invariant"] == "write-order"
    assert "receipt-log" in violation["detail"]


# ----------------------------------------------------------------------
# handcrafted event streams through the real recorder + monitor
# ----------------------------------------------------------------------
def harness(protocol="fbl", recovery="nonblocking", n=3):
    """A recorder with a subscribed sanitizer, as ``System`` wires it."""
    config = SystemConfig(n=n, protocol=protocol, recovery=recovery)
    sanitizer = Sanitizer(config)
    trace = TraceRecorder()
    trace.subscribe(sanitizer.on_event)
    for node in range(n):
        trace.record(0.0, "node", node, "start")
    return trace, sanitizer


def test_orphan_delivery_caught_with_span_chain():
    """Delivering a message whose send was rolled back and never
    re-executed is an orphan, flagged at the delivery with the span
    chain that was open on the receiver."""
    trace, sanitizer = harness()
    # node 1 delivers once, then sends ssn 5 to node 0 from that state
    trace.record(0.10, "app", 1, "deliver", sender=2, ssn=0, rsn=0)
    trace.record(0.11, "app", 1, "send", dst=0, ssn=5, deliveries=1)
    # node 1 crashes and recovers having lost that delivery (and send)
    trace.record(0.20, "node", 1, "crash")
    trace.record(0.50, "node", 1, "recovered", delivered=0, incarnation=1)
    # node 0, mid-checkpoint, delivers the rolled-back message anyway
    trace.record(0.60, "span", 0, "begin", span=7, kind="node.checkpoint")
    trace.record(0.61, "app", 0, "deliver", sender=1, ssn=5, rsn=0)
    assert not sanitizer.clean
    violation = sanitizer.violations[0]
    assert violation.invariant == "orphan-free"
    assert violation.node == 0
    assert violation.time == 0.61
    assert "rolled back" in violation.detail
    assert [link["kind"] for link in violation.span_chain] == ["node.checkpoint"]


def test_recovery_orphaned_frontier_caught_after_clock_advance():
    """A live process left dependent on a delivery the recovery lost is
    flagged once the clock moves past the recovery instant."""
    trace, sanitizer = harness()
    trace.record(0.10, "app", 2, "send", dst=1, ssn=0, deliveries=0)
    trace.record(0.12, "app", 1, "deliver", sender=2, ssn=0, rsn=0)
    trace.record(0.14, "app", 1, "send", dst=0, ssn=1, deliveries=1)
    # node 0 now depends on node 1's delivery (1, 0)
    trace.record(0.30, "span", 0, "begin", span=9, kind="recovery.episode")
    trace.record(0.31, "app", 0, "deliver", sender=1, ssn=1, rsn=0)
    trace.record(0.40, "node", 1, "crash")
    # node 1 recovers with the delivery lost; slot (1, 0) never refills
    trace.record(0.50, "node", 1, "recovered", delivered=0, incarnation=1)
    assert sanitizer.clean  # deferred: same-instant refills must be allowed
    trace.record(0.60, "app", 2, "send", dst=1, ssn=1, deliveries=0)
    assert not sanitizer.clean
    violation = sanitizer.violations[0]
    assert violation.invariant == "orphan-free"
    assert violation.node == 0
    assert violation.time == 0.50
    assert "(1, 0)" in violation.detail
    assert [link["kind"] for link in violation.span_chain] == ["recovery.episode"]


def test_recovery_rollback_healed_at_same_instant_is_clean():
    """Slots re-occupied at the recovery timestamp itself (queued
    retransmissions) are restored state, not orphans."""
    trace, sanitizer = harness()
    trace.record(0.10, "app", 2, "send", dst=1, ssn=0, deliveries=0)
    trace.record(0.12, "app", 1, "deliver", sender=2, ssn=0, rsn=0)
    trace.record(0.14, "app", 1, "send", dst=0, ssn=1, deliveries=1)
    trace.record(0.31, "app", 0, "deliver", sender=1, ssn=1, rsn=0)
    trace.record(0.40, "node", 1, "crash")
    trace.record(0.50, "node", 1, "recovered", delivered=0, incarnation=1)
    # the queued retransmission lands at the recovery instant
    trace.record(0.50, "app", 1, "deliver", sender=2, ssn=0, rsn=0)
    trace.record(0.60, "app", 2, "send", dst=1, ssn=1, deliveries=0)
    sanitizer.finalize()
    assert sanitizer.clean, [str(v) for v in sanitizer.violations]


def test_det_ack_before_store_caught():
    """FBL may count a host toward f+1 replication only after the host
    recorded the determinant."""
    trace, sanitizer = harness()
    det = [2, 0, 1, 0]
    # node 1 processes an ack from node 2 that node 2 never earned
    trace.record(0.20, "protocol", 1, "det_ack", src=2, dets=[det])
    assert not sanitizer.clean
    violation = sanitizer.violations[0]
    assert violation.invariant == "det-complete"
    assert violation.node == 1
    assert violation.time == 0.20


def test_det_ack_after_store_is_clean():
    trace, sanitizer = harness()
    det = [2, 0, 1, 0]
    trace.record(0.10, "protocol", 2, "det_store", src=1, dets=[det])
    trace.record(0.20, "protocol", 1, "det_ack", src=2, dets=[det])
    sanitizer.finalize()
    assert sanitizer.clean


def test_block_under_nonblocking_recovery_caught():
    trace, sanitizer = harness(recovery="nonblocking")
    trace.record(0.30, "node", 2, "block")
    assert not sanitizer.clean
    violation = sanitizer.violations[0]
    assert violation.invariant == "no-block"
    assert violation.node == 2


def test_block_under_blocking_recovery_is_expected():
    trace, sanitizer = harness(recovery="blocking")
    trace.record(0.30, "node", 2, "block")
    sanitizer.finalize()
    assert sanitizer.clean


# ----------------------------------------------------------------------
# the schedule-perturbation differ
# ----------------------------------------------------------------------
def test_derive_tiebreak_seed_is_canonical_for_replica_zero():
    from repro.sanitizer.differ import derive_tiebreak_seed

    assert derive_tiebreak_seed(0, 0) is None
    assert derive_tiebreak_seed(1234, 0) is None
    one = derive_tiebreak_seed(7, 1)
    two = derive_tiebreak_seed(7, 2)
    assert one is not None and two is not None and one != two
    assert derive_tiebreak_seed(7, 1) == one  # deterministic


def test_check_trial_requires_two_replicas():
    from repro.sanitizer.differ import check_trial

    with pytest.raises(ValueError):
        check_trial(small_config(), replicas=1)


def test_check_trial_clean_protocol_has_no_divergence():
    from repro.sanitizer.differ import check_trial

    config = make(
        "fbl", "nonblocking", crashes=[crash_at(2, 0.03)], sanitize=True
    )
    report = check_trial(config, replicas=2, jobs=1)
    assert report.ok, report.divergences
    assert len(report.replicas) == 2
    assert report.replicas[0].tiebreak_seed is None
    assert report.replicas[1].tiebreak_seed is not None
    for outcome in report.replicas:
        assert outcome.semantic["consistent"]
        assert outcome.semantic["sanitizer_clean"]
        assert outcome.semantic["progressed"]
    payload = report.as_dict()
    assert payload["ok"] and payload["seed"] == config.seed


def test_check_trial_flags_unhealthy_replica():
    """Health problems inside any replica are divergences even when the
    replicas agree with each other."""
    from repro.sanitizer import differ

    problems = differ._health_problems(
        {
            "consistent": False,
            "sanitizer_clean": False,
            "non_live_nodes": [3],
            "episodes_complete": False,
            "progressed": False,
        }
    )
    assert len(problems) == 5
    clean = differ._health_problems(
        {
            "consistent": True,
            "sanitizer_clean": None,  # sanitizer off -> not a failure
            "non_live_nodes": [],
            "episodes_complete": True,
            "progressed": True,
        }
    )
    assert clean == []


# ----------------------------------------------------------------------
# exhaustive small-scope checking
# ----------------------------------------------------------------------
def exhaustive_config(**kw):
    from repro.sanitizer.differ import exhaustive_check_trial  # noqa: F401

    kw.setdefault("n", 3)
    kw.setdefault("workload_params", {"hops": 8, "fanout": 1})
    return make("fbl", "nonblocking", crashes=[crash_at(2, 0.03)], **kw)


def test_exhaustive_check_clean_trial_has_no_divergence():
    from repro.sanitizer.differ import exhaustive_check_trial

    report = exhaustive_check_trial(exhaustive_config(), max_schedules=8)
    assert report.ok, report.divergences
    assert report.schedules >= 2  # the canonical run plus real alternatives
    assert report.decision_points > 0
    assert report.max_width >= 2
    payload = report.as_dict()
    assert payload["mode"] == "exhaustive"
    assert payload["ok"] and payload["schedules"] == report.schedules


def test_exhaustive_check_budget_marks_incomplete():
    from repro.sanitizer.differ import exhaustive_check_trial

    report = exhaustive_check_trial(exhaustive_config(), max_schedules=2)
    assert report.schedules == 2
    assert not report.complete  # the tree is far bigger than two runs
    assert report.ok  # truncation alone is not a divergence


def test_exhaustive_check_rejects_empty_budget():
    from repro.sanitizer.differ import exhaustive_check_trial

    with pytest.raises(ValueError):
        exhaustive_check_trial(exhaustive_config(), max_schedules=0)


def test_exhaustive_check_flags_schedule_divergence(monkeypatch):
    """A schedule whose semantic outcome differs from the canonical run
    must be reported (here: the fingerprint is perturbed under the
    covers, standing in for a real schedule-dependent bug)."""
    from repro.sanitizer import differ

    real = differ.semantic_fingerprint
    seen = {"count": 0}

    def skewed(summary):
        fingerprint = dict(real(summary))
        seen["count"] += 1
        if seen["count"] > 1:  # every non-canonical schedule "progresses
            fingerprint["progressed"] = False  # differently"
            fingerprint["consistent"] = False
        return fingerprint

    monkeypatch.setattr(differ, "semantic_fingerprint", skewed)
    report = differ.exhaustive_check_trial(
        exhaustive_config(), max_schedules=3
    )
    assert not report.ok
    assert any("consistent" in d or "progressed" in d
               for d in report.divergences)
