"""E11 -- recovery on a lossy network: what reliability costs.

The paper charges protocols for their recovery traffic assuming the
channels are reliable.  Here the network actually loses (and the
reliable transport re-establishes the abstraction by retrying), so the
ledger splits into the paper's control messages and the transport's own
overhead -- retransmissions and acks -- as the loss rate grows.  The
recovery comparison of E1 (blocking vs non-blocking, one crash) is
repeated at each loss rate.
"""

import pytest

from repro.experiments import lossy_network

from paper_setup import emit, once

VICTIM = 3

LOSS_RATES = [0.0, 0.02, 0.05, 0.1, 0.2]

#: at 20% loss a round trip fails ~36% of the time; the default retry
#: budget leaves a small per-message chance of a spurious channel reset
TRANSPORT = {"max_retries": 30}


def _config(recovery, loss):
    return lossy_network(
        recovery=recovery, loss=loss, victim=VICTIM, transport_params=TRANSPORT
    ).config


def run(recovery, loss):
    system = lossy_network(
        recovery=recovery, loss=loss, victim=VICTIM, transport_params=TRANSPORT
    )
    result = system.run()
    assert result.consistent
    assert result.recovery_durations(), f"no recovery at loss={loss}"
    return result


@pytest.mark.benchmark(group="exp11")
def test_exp11_loss_rate_sweep(benchmark):
    from repro.runner import run_results

    points = [(recovery, loss) for loss in LOSS_RATES
              for recovery in ("blocking", "nonblocking")]
    results = run_results([_config(recovery, loss) for recovery, loss in points])
    by_point = {}
    for (recovery, loss), result in zip(points, results):
        assert result.consistent
        assert result.recovery_durations(), f"no recovery at loss={loss}"
        by_point[(recovery, loss)] = result

    rows = []
    measurements = {}
    for loss in LOSS_RATES:
        blocking = by_point[("blocking", loss)]
        nonblocking = by_point[("nonblocking", loss)]
        measurements[loss] = (blocking, nonblocking)
        rows.append([
            f"{loss * 100:g}%",
            f"{blocking.recovery_durations()[0]:.2f}",
            f"{nonblocking.recovery_durations()[0]:.2f}",
            blocking.recovery_messages(),
            nonblocking.recovery_messages(),
            nonblocking.retransmissions(),
            f"{nonblocking.reliability_overhead_bytes() / 1000:.1f}",
        ])
    once(benchmark, lambda: run("nonblocking", LOSS_RATES[1]))
    emit(
        "E11 recovery under message loss (reliable transport, 1 crash)",
        ["loss", "blk recovery (s)", "nb recovery (s)",
         "blk ctl msgs", "nb ctl msgs", "nb retransmits",
         "nb reliability overhead (KB)"],
        rows,
    )
    # a loss-free run needs no retransmissions, only acks
    clean_blocking, clean_nonblocking = measurements[0.0]
    assert clean_nonblocking.retransmissions() == 0
    assert clean_nonblocking.transport_messages() > 0
    # the reliability bill grows with the loss rate
    retransmits = [measurements[l][1].retransmissions() for l in LOSS_RATES]
    assert all(a <= b for a, b in zip(retransmits, retransmits[1:]))
    assert retransmits[-1] > 0
    # both recoveries complete and stay consistent even at 20% loss,
    # and the non-blocking advantage survives the lossy network
    worst_blocking, worst_nonblocking = measurements[LOSS_RATES[-1]]
    assert worst_nonblocking.total_blocked_time == 0.0
    assert worst_blocking.mean_blocked_time(exclude=[VICTIM]) > 0
