"""E1 -- the paper's first experiment: a single failure.

Paper (Section 5): "For a single failure, the recovering process took
the same time to recover under both algorithms.  However, the blocking
algorithm caused each live process to block for about 50 milliseconds on
average, while the new algorithm did not affect the execution of the
live processes."

Reproduced shape:
* recovery durations equal to within a few percent (detection + restore
  dominate both),
* blocking baseline: live processes blocked for tens of milliseconds,
* new algorithm: zero blocked time,
* the new algorithm pays more recovery-control messages.
"""

import pytest

from repro import build_system, crash_at

from paper_setup import emit, once, paper_config

VICTIM = 3


def run(recovery: str, seed: int = 0):
    config = paper_config(
        f"e1-{recovery}", recovery=recovery, seed=seed,
        crashes=[crash_at(node=VICTIM, time=0.05)],
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    return result


@pytest.mark.benchmark(group="exp1")
def test_exp1_single_failure(benchmark):
    blocking = run("blocking")
    nonblocking = once(benchmark, lambda: run("nonblocking"))

    d_blk = blocking.recovery_durations()[0]
    d_nb = nonblocking.recovery_durations()[0]
    blocked_blk = blocking.mean_blocked_time(exclude=[VICTIM])
    blocked_nb = nonblocking.mean_blocked_time(exclude=[VICTIM])

    emit(
        "E1 single failure (paper: same recovery time; ~50 ms blocked vs none)",
        ["algorithm", "recovery (s)", "live blocked (ms)", "recovery msgs", "recovery bytes"],
        [
            ["blocking", f"{d_blk:.3f}", f"{blocked_blk * 1000:.1f}",
             blocking.recovery_messages(), blocking.recovery_bytes()],
            ["nonblocking (new)", f"{d_nb:.3f}", f"{blocked_nb * 1000:.1f}",
             nonblocking.recovery_messages(), nonblocking.recovery_bytes()],
        ],
    )

    # -- the paper's claims, as assertions ------------------------------
    # same recovery time for the failed process
    assert abs(d_blk - d_nb) / max(d_blk, d_nb) < 0.05
    # blocking stalls each live process for tens of milliseconds
    assert 0.005 < blocked_blk < 0.5
    # the new algorithm does not affect live processes at all
    assert blocked_nb == 0.0
    # the price: a higher communication overhead during recovery
    assert nonblocking.recovery_messages() > blocking.recovery_messages()


@pytest.mark.benchmark(group="exp1")
def test_exp1_overhead_is_milliseconds(benchmark):
    """The distributed part of the new algorithm costs milliseconds."""
    result = once(benchmark, lambda: run("nonblocking", seed=3))
    episode = result.episodes[0]
    algorithm_time = (
        episode.total_duration
        - episode.detection_duration
        - episode.restore_duration
    )
    emit(
        "E1 anatomy of non-blocking recovery",
        ["phase", "seconds"],
        [
            ["failure detection", f"{episode.detection_duration:.3f}"],
            ["state restore", f"{episode.restore_duration:.3f}"],
            ["algorithm + replay", f"{algorithm_time:.4f}"],
        ],
    )
    assert algorithm_time < 0.05
