"""Kernel hot-path microbenchmark -> ``BENCH_KERNEL.json``.

Tracks the simulation kernel's throughput from PR 3 onward so perf
regressions are caught by CI and wins are recorded next to the code
that bought them.  Three workloads:

* ``dispatch_chain`` -- pure schedule/pop/fire cost: a few concurrent
  self-rescheduling event chains, no cancellations.  Measures the
  per-event floor (Event construction, heap push/pop, dispatch).
* ``timer_churn`` -- the retransmit-timer pattern that hurt the seed
  kernel: every step schedules a far-deadline timer and cancels the
  previous one (an "ack" arriving long before the retransmit fires).
  Lazily-cancelled corpses pile up in the heap; with compaction the
  heap stays small, without it every push pays O(log corpses) and the
  final drain walks them all.
* ``lossy_system`` -- a real E11-style run (FBL + non-blocking
  recovery, reliable transport over a 20 %-loss network, one crash):
  the end-to-end events/sec a sweep actually sees.
* ``huge_system`` -- intra-run scale: event chains hopping between
  thousands of per-process counters through the kernel's handle-free
  ``schedule_fast`` path (event-pool reuse, no EventHandle per hop).
  Tracks peak RSS and its flatness: ``rss_ratio`` compares the process
  peak at the end of the run against the peak at 10 % of the horizon,
  so unbounded per-event growth shows up as a ratio well above 1.
  The default (CI smoke) size is 2k processes / 400k events; pass
  ``--huge-full`` for the 10k-process / 10M-event version recorded
  under ``huge_system_full``.

Usage::

    python benchmarks/bench_kernel.py --capture after   # measure + store
    python benchmarks/bench_kernel.py --capture before  # (pre-optimisation)
    python benchmarks/bench_kernel.py --check           # CI smoke: fail on
                                                        # >30% events/sec loss
    python benchmarks/bench_kernel.py --runner-speedup  # E5/E11 serial vs
                                                        # --jobs 4 wall clock
    python benchmarks/bench_kernel.py --shards 4        # huge_system on the
                                                        # sharded kernel, label
                                                        # 'after-shards4'
    python benchmarks/bench_kernel.py --check --shards 4  # CI smoke vs the
                                                          # 'after-shards4'
                                                          # capture

The JSON keeps one measurement block per capture label; ``--check``
compares a fresh measurement against the committed ``after`` block and
exits non-zero if any workload's events/sec regressed more than
``--tolerance`` (default 0.30, i.e. 30 %).  Absolute numbers are
host-dependent; the before/after pair in the committed file was taken
on one machine in one sitting, so the ratio is meaningful even where
the absolutes are not.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, Optional

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.sim.kernel import Simulator  # noqa: E402
from repro.sim.profile import peak_rss_kb  # noqa: E402

DEFAULT_PATH = os.path.join(_HERE, "BENCH_KERNEL.json")
DEFAULT_TOLERANCE = 0.30


def _noop() -> None:
    pass


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def bench_dispatch_chain(n_events: int = 400_000, chains: int = 4) -> Dict[str, Any]:
    """Raw dispatch throughput: no kwargs, no cancellations."""
    sim = Simulator()

    def tick(remaining: int) -> None:
        if remaining:
            sim.schedule(0.001, tick, remaining - 1)

    per_chain = n_events // chains
    for i in range(chains):
        sim.schedule(0.001 * (i + 1), tick, per_chain - 1)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "events": sim.events_processed,
        "wall_s": wall,
        "events_per_sec": sim.events_processed / wall,
        "peak_heap": chains,
    }


def bench_timer_churn(n_steps: int = 150_000, timer_delay: float = 30.0) -> Dict[str, Any]:
    """The retransmit-heavy pattern: schedule a far timer, cancel the
    previous one, repeat.  Exercises cancelled-corpse accumulation."""
    sim = Simulator()
    state = {"prev": None, "count": 0, "peak": 0}

    def step() -> None:
        state["count"] += 1
        prev = state["prev"]
        if prev is not None:
            prev.cancel()
        state["prev"] = sim.schedule(timer_delay, _noop, label="retransmit")
        if state["count"] < n_steps:
            sim.schedule(0.0001, step, label="step")
        depth = sim.pending_events
        if depth > state["peak"]:
            state["peak"] = depth

    sim.schedule(0.0, step, label="step")
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "events": sim.events_processed,
        "wall_s": wall,
        "events_per_sec": sim.events_processed / wall,
        "peak_heap": state["peak"],
    }


def bench_lossy_system(hops: int = 500, loss: float = 0.2) -> Dict[str, Any]:
    """An E11-style full-system run: lossy network, reliable transport,
    one crash.  Retransmit timers cancelled by acks churn the heap."""
    from repro.experiments import lossy_network

    system = lossy_network(
        recovery="nonblocking",
        loss=loss,
        victim=3,
        transport_params={"max_retries": 30},
        workload_params={"hops": hops, "fanout": 2},
        state_bytes=100_000,
        detection_delay=0.5,
    )
    t0 = time.perf_counter()
    result = system.run()
    wall = time.perf_counter() - t0
    assert result.consistent, "lossy_system bench run went inconsistent"
    return {
        "events": result.extra["events_processed"],
        "wall_s": wall,
        "events_per_sec": result.extra["events_processed"] / wall,
        "peak_heap": None,  # not tracked without a profiler; see timer_churn
    }


def bench_huge_system(
    n_procs: int = 2_000,
    n_events: int = 400_000,
    chains: int = 64,
    shards: int = 1,
) -> Dict[str, Any]:
    """Intra-run scale through the handle-free pooled path.

    ``chains`` concurrent event chains hop between ``n_procs``
    per-process counters via ``schedule_fast`` (an LCG picks the next
    hop, so the access pattern is scattered but deterministic).  No
    handles, no kwargs: every hop after the first ``EVENT_POOL_MAX``
    should be served by recycling a pooled Event.  ``rss_ratio`` is the
    process's peak RSS at the end of the run over its peak at 10 % of
    the horizon -- flat-memory execution keeps it near 1.0 regardless
    of ``n_events``.

    With ``shards > 1`` the same workload runs on a
    :class:`~repro.sim.shard.ShardedSimulator` (``threads`` executor,
    one worker per shard): every hop becomes a ``schedule_message`` to
    the next process, whose hop delay equals the lookahead, so each
    window executes one hop per live chain on every shard.  Each chain
    carries its own remaining-hop budget (no cross-shard shared
    counter), and the RSS probe is a timer at 10 % of the virtual
    horizon instead of a hop count.  On a multi-core interpreter
    without the GIL the threads executor turns shards into real
    parallelism; under the GIL the numbers measure the windowing
    overhead honestly.
    """
    from array import array

    per_chain = max(1, n_events // chains)
    counters = array("Q", [0]) * n_procs

    if shards > 1:
        from repro.sim.shard import ShardedSimulator

        lookahead = 0.001  # == the hop delay: one hop per chain per window
        sim = ShardedSimulator(shards, lookahead=lookahead, executor="threads")
        state = {"rss_tenth": 0}
        horizon = per_chain * lookahead

        def hop(proc: int, r: int, remaining: int) -> None:
            counters[proc] += 1
            if remaining:
                nxt = (r * 1103515245 + 12345) & 0x7FFFFFFF
                sim.schedule_message(
                    sim.now + lookahead, nxt % n_procs, hop, nxt % n_procs,
                    nxt, remaining - 1,
                )

        def probe_rss() -> None:
            state["rss_tenth"] = peak_rss_kb()

        for i in range(chains):
            proc = i % n_procs
            with sim.home(proc):
                sim.schedule_fast(
                    0.0001 * (i + 1), hop, proc, (i + 1) * 2654435761,
                    per_chain - 1,
                )
        with sim.home(0):
            sim.schedule_fast(horizon * 0.1, probe_rss)
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        rss_end = peak_rss_kb()
        rss_tenth = state["rss_tenth"] or rss_end
        return {
            "events": sim.events_processed,
            "wall_s": wall,
            "events_per_sec": sim.events_processed / wall,
            "peak_heap": chains,
            "n_procs": n_procs,
            "shards": shards,
            "windows": sim.windows,
            "peak_rss_kb": rss_end,
            "rss_ratio": round(rss_end / rss_tenth, 3),
            # always-present pool stats (the facade sums per-shard pools)
            # so --check comparisons never KeyError across shard counts
            "pool_reuses": sim.pool_reuses,
            "pool_size": sim.pool_size,
        }

    sim = Simulator()
    state = {"count": 0, "rss_tenth": 0}
    tenth = max(1, n_events // 10)

    def hop1(proc: int, r: int) -> None:
        counters[proc] += 1
        count = state["count"] + 1
        state["count"] = count
        if count == tenth:
            state["rss_tenth"] = peak_rss_kb()
        if count < n_events:
            r = (r * 1103515245 + 12345) & 0x7FFFFFFF
            sim.schedule_fast(0.001, hop1, r % n_procs, r)

    for i in range(chains):
        sim.schedule_fast(0.0005 * (i + 1), hop1, i % n_procs, (i + 1) * 2654435761)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    rss_end = peak_rss_kb()
    rss_tenth = state["rss_tenth"] or rss_end
    return {
        "events": sim.events_processed,
        "wall_s": wall,
        "events_per_sec": sim.events_processed / wall,
        "peak_heap": chains,
        "n_procs": n_procs,
        "shards": 1,
        "peak_rss_kb": rss_end,
        "rss_ratio": round(rss_end / rss_tenth, 3),
        "pool_reuses": sim.pool_reuses,
        "pool_size": sim.pool_size,
    }


#: rss_ratio above this fails --check / --huge-full: RSS at the end of
#: the run must stay within 1.5x the RSS at 10% of the horizon
RSS_RATIO_MAX = 1.5

WORKLOADS = {
    "dispatch_chain": bench_dispatch_chain,
    "timer_churn": bench_timer_churn,
    "lossy_system": bench_lossy_system,
    "huge_system": bench_huge_system,
}


def measure_all(repeats: int = 3, shards: int = 1) -> Dict[str, Any]:
    """Run every workload ``repeats`` times, keep the best (least noisy)
    by events/sec.

    With ``shards > 1`` only ``huge_system`` runs (on the sharded
    kernel); the other workloads are single-heap by construction and
    their sharded numbers would just re-measure the plain kernel.
    """
    workloads: Dict[str, Any] = dict(WORKLOADS)
    if shards > 1:
        workloads = {
            "huge_system": lambda: bench_huge_system(shards=shards),
        }
    results: Dict[str, Any] = {}
    for name, fn in workloads.items():
        best: Optional[Dict[str, Any]] = None
        for _ in range(repeats):
            sample = fn()
            if best is None or sample["events_per_sec"] > best["events_per_sec"]:
                best = sample
        results[name] = best
        rss = (
            f"  rss_ratio {best['rss_ratio']:.2f}" if "rss_ratio" in best else ""
        )
        print(
            f"  {name:16s} {best['events']:>8d} events  "
            f"{best['events_per_sec']:>12.0f} ev/s  "
            f"peak heap {best['peak_heap']}{rss}"
        )
    return results


def host_info() -> Dict[str, Any]:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


# ----------------------------------------------------------------------
# runner speedup (E5 / E11 trial sets, serial vs parallel)
# ----------------------------------------------------------------------
def _e5_configs():
    sys.path.insert(0, _HERE)
    from paper_setup import paper_config

    from repro.procs.failure import crash_at

    configs = []
    for n in (4, 8, 16, 32):
        for recovery in ("blocking", "nonblocking"):
            configs.append(paper_config(
                f"e5-{recovery}-{n}", recovery=recovery, n=n,
                crashes=[crash_at(node=1, time=0.05)], hops=30,
                keep_trace_events=False,
            ))
    return configs


def _e11_configs():
    from repro.experiments import lossy_network

    configs = []
    for loss in (0.0, 0.02, 0.05, 0.1, 0.2):
        for recovery in ("blocking", "nonblocking"):
            system = lossy_network(
                recovery=recovery, loss=loss, victim=3,
                transport_params={"max_retries": 30},
            )
            configs.append(system.config)
    return configs


def measure_runner_speedup(jobs: int = 4) -> Dict[str, Any]:
    from repro.runner import TrialRunner, TrialSpec

    out: Dict[str, Any] = {"jobs": jobs, "host_cpus": os.cpu_count()}
    for name, maker in (("e5", _e5_configs), ("e11", _e11_configs)):
        specs = [TrialSpec(config=c) for c in maker()]
        t0 = time.perf_counter()
        serial = TrialRunner(jobs=1).run([TrialSpec(config=s.config) for s in specs])
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = TrialRunner(jobs=jobs).run(specs)
        parallel_s = time.perf_counter() - t0
        assert [r.summary for r in serial] == [r.summary for r in parallel], (
            f"{name}: serial/parallel parity violated"
        )
        out[name] = {
            "trials": len(specs),
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 2),
        }
        print(
            f"  {name}: {len(specs)} trials, serial {serial_s:.2f}s, "
            f"--jobs {jobs} {parallel_s:.2f}s "
            f"({serial_s / parallel_s:.2f}x, parity ok)"
        )
    return out


# ----------------------------------------------------------------------
# persistence / CI check
# ----------------------------------------------------------------------
def load(path: str) -> Dict[str, Any]:
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    return {"schema": 1, "captures": {}}


def save(path: str, data: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def cmd_capture(path: str, label: str, shards: int = 1) -> int:
    print(f"capturing '{label}' kernel numbers ...")
    data = load(path)
    data["captures"][label] = {
        "host": host_info(),
        "workloads": measure_all(shards=shards),
        "peak_rss_kb": peak_rss_kb(),
    }
    before = data["captures"].get("before", {}).get("workloads")
    after = data["captures"].get("after", {}).get("workloads")
    if before and after:
        print("before -> after events/sec:")
        for name in WORKLOADS:
            # a workload may exist in only one capture (e.g. added after
            # the 'before' label was taken)
            if name not in before or name not in after:
                continue
            b = before[name]["events_per_sec"]
            a = after[name]["events_per_sec"]
            print(f"  {name:16s} {b:>12.0f} -> {a:>12.0f}  ({(a / b - 1) * 100:+.1f}%)")
    save(path, data)
    print(f"wrote {path}")
    return 0


def cmd_check(path: str, tolerance: float, shards: int = 1) -> int:
    data = load(path)
    label = "after" if shards == 1 else f"after-shards{shards}"
    baseline = data["captures"].get(label, {}).get("workloads")
    if not baseline:
        print(
            f"error: no '{label}' capture in {path}; run "
            f"--capture {label}{f' --shards {shards}' if shards > 1 else ''} first",
            file=sys.stderr,
        )
        return 2
    print(f"kernel throughput smoke vs {path} '{label}' "
          f"(tolerance {tolerance:.0%}):")
    measured = measure_all(shards=shards)
    failed = []
    for name, stats in measured.items():
        if name not in baseline:
            print(f"  {name:16s} (no committed baseline; skipped)")
            continue
        want = baseline[name]["events_per_sec"] * (1.0 - tolerance)
        ok = stats["events_per_sec"] >= want
        print(
            f"  {name:16s} measured {stats['events_per_sec']:>12.0f} ev/s, "
            f"floor {want:>12.0f} ev/s: {'ok' if ok else 'REGRESSED'}"
        )
        if not ok:
            failed.append(name)
        if stats.get("rss_ratio", 0.0) > RSS_RATIO_MAX:
            print(
                f"  {name:16s} rss_ratio {stats['rss_ratio']:.2f} > "
                f"{RSS_RATIO_MAX:.2f}: MEMORY NOT FLAT"
            )
            failed.append(f"{name} (rss)")
    if failed:
        print(f"FAIL: events/sec regressed >{tolerance:.0%} on: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("ok: kernel throughput within tolerance")
    return 0


def cmd_huge_full(path: str) -> int:
    """The full-size huge_system run (10k procs, 10M events), recorded
    under ``huge_system_full``; fails if RSS is not flat vs horizon."""
    print("running full-size huge_system (10,000 procs, 10,000,000 events) ...")
    stats = bench_huge_system(n_procs=10_000, n_events=10_000_000)
    print(
        f"  {stats['events']} events in {stats['wall_s']:.1f}s "
        f"({stats['events_per_sec']:.0f} ev/s), peak RSS "
        f"{stats['peak_rss_kb'] / 1024:.1f} MB, rss_ratio {stats['rss_ratio']:.3f}, "
        f"pool reuses {stats['pool_reuses']}"
    )
    data = load(path)
    data["huge_system_full"] = {"host": host_info(), **stats}
    save(path, data)
    print(f"wrote {path}")
    if stats["rss_ratio"] > RSS_RATIO_MAX:
        print(
            f"FAIL: rss_ratio {stats['rss_ratio']:.3f} > {RSS_RATIO_MAX} "
            "(memory grows with horizon)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_runner_speedup(path: str, jobs: int) -> int:
    print(f"measuring trial-runner speedup (serial vs --jobs {jobs}) ...")
    data = load(path)
    data["runner"] = measure_runner_speedup(jobs=jobs)
    save(path, data)
    print(f"wrote {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default=DEFAULT_PATH, help="JSON path")
    parser.add_argument("--capture", metavar="LABEL", default=None,
                        help="measure and store under this label (before/after)")
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: compare vs the committed 'after' capture")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("BENCH_KERNEL_TOLERANCE",
                                                     DEFAULT_TOLERANCE)),
                        help="allowed fractional events/sec regression for --check")
    parser.add_argument("--runner-speedup", action="store_true",
                        help="measure E5/E11 serial vs parallel wall clock")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for --runner-speedup")
    parser.add_argument("--huge-full", action="store_true",
                        help="run the full-size huge_system workload "
                             "(10k procs, 10M events) and record it")
    parser.add_argument("--shards", type=int, default=1,
                        help="run huge_system on a sharded kernel with this "
                             "many per-shard heaps (capture/check label "
                             "becomes 'after-shardsN')")
    args = parser.parse_args(argv)

    if args.check:
        return cmd_check(args.out, args.tolerance, shards=args.shards)
    if args.runner_speedup:
        return cmd_runner_speedup(args.out, args.jobs)
    if args.huge_full:
        return cmd_huge_full(args.out)
    default_label = "after" if args.shards == 1 else f"after-shards{args.shards}"
    return cmd_capture(args.out, args.capture or default_label, shards=args.shards)


if __name__ == "__main__":
    sys.exit(main())
