"""E2 -- the paper's second experiment: a failure during recovery.

Paper (Section 5): "a process failed during the execution of the
recovery of another process that failed earlier.  Under the two
algorithms, the two recovering processes required essentially about five
seconds to recover.  Most of this time was spent in failure detection
and in restoring the state of the second process.  The blocking
algorithm required each live process to block for the same amount of
time, while the new algorithm did not require such blocking.  The extra
communication overhead required by the second phase of the new algorithm
was negligible (about milliseconds)."
"""

import pytest

from repro import build_system, crash_at, crash_on

from paper_setup import emit, once, paper_config

P, Q = 3, 5  # the first and second processes to fail


def run(recovery: str):
    trigger = "depinfo_request" if recovery == "nonblocking" else "recovery_request"
    config = paper_config(
        f"e2-{recovery}", recovery=recovery,
        crashes=[
            crash_at(node=P, time=0.05),
            # q dies the instant the first recovery's request reaches it,
            # before it can reply -- the paper's exact scenario
            crash_on(Q, "net", "deliver", match_node=Q,
                     match_details={"mtype": trigger}, immediate=True),
        ],
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    return result


@pytest.mark.benchmark(group="exp2")
def test_exp2_failure_during_recovery(benchmark):
    blocking = run("blocking")
    nonblocking = once(benchmark, lambda: run("nonblocking"))

    live = [i for i in range(8) if i not in (P, Q)]
    rows = []
    for label, result in (("blocking", blocking), ("nonblocking (new)", nonblocking)):
        durations = sorted(result.recovery_durations(), reverse=True)
        blocked = result.mean_blocked_time(exclude=[P, Q])
        restarts = sum(e.gather_restarts for e in result.episodes)
        invalidations = sum(e.reply_invalidations for e in result.episodes)
        rows.append([
            label,
            f"{durations[0]:.2f}",
            f"{durations[1]:.2f}",
            f"{blocked:.3f}",
            result.recovery_messages(),
            restarts,
            invalidations,
        ])
    emit(
        "E2 failure during recovery (paper: ~5 s to recover; blocking stalls "
        "live processes the same ~5 s; new algorithm stalls none)",
        ["algorithm", "p total (s)", "q total (s)", "live blocked (s)",
         "recovery msgs", "gather restarts", "replies invalidated"],
        rows,
    )

    # recovery of the second process dominated by detection + restore
    q_nb = min(nonblocking.recovery_durations())
    q_blk = min(blocking.recovery_durations())
    assert q_nb > 3.0 and q_blk > 3.0  # seconds, as in the paper
    # blocking stalls live processes on the same seconds scale...
    assert blocking.mean_blocked_time(exclude=[P, Q]) > 3.0
    # ...while the new algorithm stalls nobody
    assert nonblocking.total_blocked_time == 0.0
    # q's failure mid-round no longer voids the gather (the paper's
    # goto 4): only the reply q owed is invalidated, the round survives
    assert sum(e.gather_restarts for e in nonblocking.episodes) == 0
    assert sum(e.reply_invalidations for e in nonblocking.episodes) >= 1
    # both recovering processes finished under both algorithms
    assert len(blocking.recovery_durations()) == 2
    assert len(nonblocking.recovery_durations()) == 2


@pytest.mark.benchmark(group="exp2")
def test_exp2_extra_communication_is_negligible(benchmark):
    """The extra second-phase messages cost milliseconds of latency."""
    nonblocking = once(benchmark, lambda: run("nonblocking"))
    blocking = run("blocking")
    extra_messages = nonblocking.recovery_messages() - blocking.recovery_messages()
    extra_bytes = nonblocking.recovery_bytes() - blocking.recovery_bytes()
    # at 155 Mb/s with sub-ms per-message costs, this is milliseconds
    wire_seconds = extra_bytes * 8 / 155e6 + extra_messages * 350e-6
    emit(
        "E2 extra communication of the new algorithm",
        ["extra msgs", "extra bytes", "approx wire time (ms)"],
        [[extra_messages, extra_bytes, f"{wire_seconds * 1000:.2f}"]],
    )
    assert extra_messages > 0
    assert wire_seconds < 0.1  # "about milliseconds"


# ----------------------------------------------------------------------
# E2 extensions: recovery under churn, old vs new control plane.
# ``nonblocking`` carries the epoch-numbered resumable rounds with
# view-change leader handoff; ``nonblocking-restart`` pins the paper's
# literal restart-everything behaviour for comparison.
# ----------------------------------------------------------------------

def churn_crashes():
    """k = 3 failure events inside one recovery window: p and q crash
    back to back, then the gather leader dies the instant it has
    collected the full round of depinfo replies -- before distributing."""
    return [
        crash_at(node=2, time=0.05),
        crash_at(node=4, time=0.06),
        crash_on(2, "recovery", "depinfo_reply_accepted", match_node=2,
                 occurrence=6, immediate=True),
    ]


@pytest.mark.benchmark(group="exp2")
def test_exp2_leader_crash_handoff_vs_restart(benchmark):
    """A leader crash mid-gather: the successor resumes the persisted
    round (new) or regathers from nothing (old)."""

    def run_pair():
        results = {}
        for recovery in ("nonblocking", "nonblocking-restart"):
            config = paper_config(
                f"e2-churn-{recovery}", recovery=recovery, f=3,
                crashes=churn_crashes(),
            )
            result = build_system(config).run()
            assert result.consistent
            results[recovery] = result
        return results

    results = once(benchmark, run_pair)
    rows = []
    for label, result in (
        ("handoff (new)", results["nonblocking"]),
        ("restart (old)", results["nonblocking-restart"]),
    ):
        episodes = result.episodes
        rows.append([
            label,
            f"{max(result.recovery_durations()):.2f}",
            sum(e.gather_restarts for e in episodes),
            sum(e.leader_handoffs for e in episodes),
            sum(e.rounds_resumed for e in episodes),
            result.recovery_messages(),
        ])
    emit(
        "E2b leader crash mid-gather (k = 3 failure events): the successor "
        "adopts the dead leader's persisted round instead of regathering",
        ["algorithm", "recovery (s)", "gather restarts", "handoffs",
         "rounds resumed", "recovery msgs"],
        rows,
    )
    new, old = results["nonblocking"], results["nonblocking-restart"]
    # both stacks finish every episode that was not superseded by a
    # re-crash, and the new stack finishes by resuming, not restarting
    assert sum(e.leader_handoffs for e in new.episodes) == 1
    assert sum(e.rounds_resumed for e in new.episodes) == 1
    assert sum(e.leader_handoffs for e in old.episodes) == 0
    assert sum(e.gather_restarts for e in old.episodes) > sum(
        e.gather_restarts for e in new.episodes
    )


@pytest.mark.benchmark(group="exp2")
def test_exp2_partition_during_recovery_starves_restart(benchmark):
    """Cascading failures plus a partition during recovery.

    The same k = 3 crash schedule, plus a partition that isolates one
    live member for ten seconds starting just after the leader collected
    its reply.  On the paper's bare channels the old algorithm starves:
    every restart re-requests the isolated member's depinfo across the
    partition, the request is swallowed, and nothing ever retries -- the
    gather is still empty-handed long after the partition has healed.
    The new algorithm's successor resumes from the persisted round,
    which already holds the isolated member's reply, so every recovering
    process has its depinfo distributed within milliseconds of the
    handoff -- no new message needs to cross the partition at all.
    """
    from repro.procs.failure import partition_at

    def run_pair():
        results = {}
        for recovery in ("nonblocking", "nonblocking-restart"):
            config = paper_config(
                f"e2-partition-{recovery}", recovery=recovery, f=3,
                crashes=churn_crashes(),
                injections=[
                    partition_at([[7], [0, 1, 2, 3, 4, 5, 6, 8]],
                                 4.09, duration=10.0)
                ],
                # the old algorithm never terminates on its own: cap the
                # observation window well past the partition heal
                run_until=30.0,
            )
            results[recovery] = build_system(config).run()
        return results

    results = once(benchmark, run_pair)
    new, old = results["nonblocking"], results["nonblocking-restart"]

    def latest(result):
        final = {}
        for episode in result.episodes:
            final[episode.node] = episode
        return final.values()

    rows = []
    for label, result in (("handoff (new)", new), ("restart (old)", old)):
        served = sum(
            1 for e in latest(result) if e.replay_start_time is not None
        )
        depinfo_at = [
            round(e.replay_start_time, 2)
            for e in latest(result)
            if e.replay_start_time is not None
        ]
        rows.append([
            label,
            f"{served}/{len(list(latest(result)))}",
            ", ".join(str(t) for t in depinfo_at) or "never",
            sum(e.gather_restarts for e in result.episodes),
            sum(e.leader_handoffs for e in result.episodes),
            result.recovery_messages(),
        ])
    emit(
        "E2c partition during recovery (heals at t=14.1, observed to "
        "t=30): the old algorithm's regather starves on one lost "
        "request; the resumed round needs nothing from the far side",
        ["algorithm", "depinfo served", "served at (s)", "gather restarts",
         "handoffs", "recovery msgs"],
        rows,
    )
    # new: every recovering process got its depinfo via the resumed
    # round, milliseconds after the leader suspicion -- six seconds
    # before the partition even healed
    assert all(e.replay_start_time is not None for e in latest(new))
    assert max(e.replay_start_time for e in latest(new)) < 10.0
    assert sum(e.leader_handoffs for e in new.episodes) == 1
    # old: the gather is still starved sixteen seconds after the heal
    assert all(e.replay_start_time is None for e in latest(old))
    assert not any(e.complete for e in old.episodes)

    # and the starvation is unbounded, not just slow: with no horizon
    # the old algorithm's poll/regather loop runs the kernel dry
    config = paper_config(
        "e2-partition-unbounded", recovery="nonblocking-restart", f=3,
        crashes=churn_crashes(),
        injections=[
            partition_at([[7], [0, 1, 2, 3, 4, 5, 6, 8]], 4.09, duration=10.0)
        ],
        max_events=200_000,
    )
    with pytest.raises(RuntimeError, match="max_events"):
        build_system(config).run()
