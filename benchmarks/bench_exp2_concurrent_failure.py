"""E2 -- the paper's second experiment: a failure during recovery.

Paper (Section 5): "a process failed during the execution of the
recovery of another process that failed earlier.  Under the two
algorithms, the two recovering processes required essentially about five
seconds to recover.  Most of this time was spent in failure detection
and in restoring the state of the second process.  The blocking
algorithm required each live process to block for the same amount of
time, while the new algorithm did not require such blocking.  The extra
communication overhead required by the second phase of the new algorithm
was negligible (about milliseconds)."
"""

import pytest

from repro import build_system, crash_at, crash_on

from paper_setup import emit, once, paper_config

P, Q = 3, 5  # the first and second processes to fail


def run(recovery: str):
    trigger = "depinfo_request" if recovery == "nonblocking" else "recovery_request"
    config = paper_config(
        f"e2-{recovery}", recovery=recovery,
        crashes=[
            crash_at(node=P, time=0.05),
            # q dies the instant the first recovery's request reaches it,
            # before it can reply -- the paper's exact scenario
            crash_on(Q, "net", "deliver", match_node=Q,
                     match_details={"mtype": trigger}, immediate=True),
        ],
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    return result


@pytest.mark.benchmark(group="exp2")
def test_exp2_failure_during_recovery(benchmark):
    blocking = run("blocking")
    nonblocking = once(benchmark, lambda: run("nonblocking"))

    live = [i for i in range(8) if i not in (P, Q)]
    rows = []
    for label, result in (("blocking", blocking), ("nonblocking (new)", nonblocking)):
        durations = sorted(result.recovery_durations(), reverse=True)
        blocked = result.mean_blocked_time(exclude=[P, Q])
        restarts = sum(e.gather_restarts for e in result.episodes)
        rows.append([
            label,
            f"{durations[0]:.2f}",
            f"{durations[1]:.2f}",
            f"{blocked:.3f}",
            result.recovery_messages(),
            restarts,
        ])
    emit(
        "E2 failure during recovery (paper: ~5 s to recover; blocking stalls "
        "live processes the same ~5 s; new algorithm stalls none)",
        ["algorithm", "p total (s)", "q total (s)", "live blocked (s)",
         "recovery msgs", "gather restarts"],
        rows,
    )

    # recovery of the second process dominated by detection + restore
    q_nb = min(nonblocking.recovery_durations())
    q_blk = min(blocking.recovery_durations())
    assert q_nb > 3.0 and q_blk > 3.0  # seconds, as in the paper
    # blocking stalls live processes on the same seconds scale...
    assert blocking.mean_blocked_time(exclude=[P, Q]) > 3.0
    # ...while the new algorithm stalls nobody
    assert nonblocking.total_blocked_time == 0.0
    # the goto-4 restart actually happened
    assert sum(e.gather_restarts for e in nonblocking.episodes) >= 1
    # both recovering processes finished under both algorithms
    assert len(blocking.recovery_durations()) == 2
    assert len(nonblocking.recovery_durations()) == 2


@pytest.mark.benchmark(group="exp2")
def test_exp2_extra_communication_is_negligible(benchmark):
    """The extra second-phase messages cost milliseconds of latency."""
    nonblocking = once(benchmark, lambda: run("nonblocking"))
    blocking = run("blocking")
    extra_messages = nonblocking.recovery_messages() - blocking.recovery_messages()
    extra_bytes = nonblocking.recovery_bytes() - blocking.recovery_bytes()
    # at 155 Mb/s with sub-ms per-message costs, this is milliseconds
    wire_seconds = extra_bytes * 8 / 155e6 + extra_messages * 350e-6
    emit(
        "E2 extra communication of the new algorithm",
        ["extra msgs", "extra bytes", "approx wire time (ms)"],
        [[extra_messages, extra_bytes, f"{wire_seconds * 1000:.2f}"]],
    )
    assert extra_messages > 0
    assert wire_seconds < 0.1  # "about milliseconds"
