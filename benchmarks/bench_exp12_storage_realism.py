"""E12 (extension) -- storage realism: incremental checkpoints,
group-commit batching, and log compaction.

The paper charges the flat mid-90s cost model: every checkpoint writes
the full ~1 MB process image and every log append pays a whole device
operation.  Real logging stacks amortise both -- copy-on-write
checkpoints sized by dirty pages, group commit of pending log records,
and compaction of checkpoint-covered log entries.  E12 measures how much
of the stable-storage bill those optimisations recover at *equal*
checkpoint intervals, then sweeps the three knobs (checkpoint interval x
batch window x dirty ratio) to map the trade-off surface.

All runs keep the oracle green and the online sanitizer clean: the
optimisations change costs, never the protocols' safety.
"""

import pytest

from repro import build_system, crash_at
from repro.core.config import StorageRealismConfig
from repro.runner import run_results

from paper_setup import emit, once, paper_config

#: the five log/checkpoint-based families compared throughout the repo,
#: each with its checkpoint interval.  Optimistic logging checkpoints
#: too: a checkpoint orphaned by a later rollback announcement is
#: detected at restart and the store falls back to the newest clean
#: retained line (CheckpointStore.retain_history).
STACKS = [
    ("fbl", "nonblocking", 8),
    ("sender_based", "nonblocking", 8),
    ("manetho", "nonblocking", 8),
    ("pessimistic", "local", 8),
    ("optimistic", "optimistic", 8),
]

CHECKPOINT_EVERY = 8


def _realism(dirty_bytes=65_536, batch_window=0.005):
    return StorageRealismConfig(
        incremental_checkpoints=True,
        dirty_bytes_per_delivery=dirty_bytes,
        group_commit=True,
        batch_window=batch_window,
        log_compaction=True,
    )


def _config(protocol, recovery, name, realism=None, **overrides):
    config = paper_config(
        name,
        protocol=protocol,
        recovery=recovery,
        crashes=[crash_at(node=2, time=0.05)],
        checkpoint_every=overrides.pop("checkpoint_every", CHECKPOINT_EVERY),
        storage_realism=realism,
        **overrides,
    )
    config.sanitize = True
    return config


def _storage_totals(result):
    busy = sum(ops["busy_time"] for ops in result.storage_ops.values())
    written = sum(ops["bytes_written"] for ops in result.storage_ops.values())
    reclaimed = sum(ops["bytes_reclaimed"] for ops in result.storage_ops.values())
    return busy, written, reclaimed


@pytest.mark.benchmark(group="exp12")
def test_exp12_realism_reduces_storage_time(benchmark):
    """Part A: flat vs realistic cost model, same checkpoint interval."""

    def run_all():
        configs = []
        for protocol, recovery, checkpoint_every in STACKS:
            configs.append(
                _config(protocol, recovery, f"e12-{protocol}-flat",
                        checkpoint_every=checkpoint_every)
            )
            configs.append(
                _config(protocol, recovery, f"e12-{protocol}-real",
                        realism=_realism(), checkpoint_every=checkpoint_every)
            )
        return run_results(configs)

    results = once(benchmark, run_all)
    rows = []
    for index, (protocol, recovery, checkpoint_every) in enumerate(STACKS):
        flat, real = results[2 * index], results[2 * index + 1]
        for result in (flat, real):
            assert result.consistent, f"{protocol}: oracle violations"
            assert result.extra["sanitizer"]["clean"], f"{protocol}: sanitizer"
        flat_busy, flat_written, _ = _storage_totals(flat)
        real_busy, real_written, reclaimed = _storage_totals(real)
        rows.append([
            f"{protocol}+{recovery}",
            checkpoint_every,
            f"{flat_busy:.2f}",
            f"{real_busy:.2f}",
            f"{100 * (1 - real_busy / flat_busy):.0f}%",
            f"{flat_written / 1e6:.1f}",
            f"{real_written / 1e6:.1f}",
            f"{reclaimed / 1e6:.1f}",
        ])
        # the acceptance criterion: same interval, cheaper stable storage
        assert real_busy < flat_busy, (
            f"{protocol}: realism busy {real_busy:.3f}s >= flat {flat_busy:.3f}s"
        )
    emit(
        "E12a stable-storage device time, flat vs realistic model "
        "(equal checkpoint intervals, one crash)",
        ["stack", "ckpt every", "flat busy (s)", "real busy (s)", "saved",
         "flat MB written", "real MB written", "MB reclaimed"],
        rows,
    )


@pytest.mark.benchmark(group="exp12")
def test_exp12_knob_sweep(benchmark):
    """Part B: checkpoint interval x batch window x dirty ratio."""
    points = []
    for checkpoint_every in (4, 8, 16):
        for batch_window in (0.001, 0.005):
            for dirty_ratio in (0.25, 0.75):
                points.append((checkpoint_every, batch_window, dirty_ratio))

    def run_all():
        configs = []
        for checkpoint_every, batch_window, dirty_ratio in points:
            dirty = int(dirty_ratio * 1_000_000 / CHECKPOINT_EVERY)
            config = _config(
                "pessimistic", "local",
                f"e12-k{checkpoint_every}-w{batch_window}-d{dirty_ratio}",
                realism=_realism(dirty_bytes=dirty, batch_window=batch_window),
                checkpoint_every=checkpoint_every,
            )
            config.keep_trace_events = False
            configs.append(config)
        return run_results(configs)

    results = once(benchmark, run_all)
    rows = []
    for (checkpoint_every, batch_window, dirty_ratio), result in zip(
        points, results
    ):
        assert result.consistent
        assert result.extra["sanitizer"]["clean"]
        busy, written, reclaimed = _storage_totals(result)
        durations = result.recovery_durations()
        rows.append([
            checkpoint_every,
            f"{batch_window * 1000:.0f}",
            f"{dirty_ratio:.2f}",
            f"{busy:.2f}",
            f"{written / 1e6:.1f}",
            f"{reclaimed / 1e6:.1f}",
            f"{max(durations):.2f}" if durations else "-",
        ])
    emit(
        "E12b pessimistic+local: checkpoint interval x batch window x "
        "dirty ratio (all realism knobs on)",
        ["ckpt every", "window (ms)", "dirty ratio", "busy (s)",
         "MB written", "MB reclaimed", "recovery (s)"],
        rows,
    )


@pytest.mark.benchmark(group="exp12")
def test_exp12_incremental_chain_bounded(benchmark):
    """Periodic fulls bound the delta chain a restart must read back."""

    def run_one():
        config = _config(
            "pessimistic", "local", "e12-chain",
            realism=_realism(dirty_bytes=32_768),
        )
        system = build_system(config)
        return system, system.run()

    system, result = once(benchmark, run_one)
    assert result.consistent
    chains = {
        node.node_id: result.storage_ops[node.node_id]["chain_length"]
        for node in system.nodes
    }
    full_every = _realism().full_checkpoint_every
    assert all(1 <= length <= full_every for length in chains.values()), chains
    fulls = sum(ops["full_segments"] for ops in result.storage_ops.values())
    deltas = sum(ops["delta_segments"] for ops in result.storage_ops.values())
    emit(
        "E12c incremental checkpoint chains stay bounded "
        f"(full every {full_every})",
        ["metric", "value"],
        [
            ["full segments written", fulls],
            ["delta segments written", deltas],
            ["longest live chain", max(chains.values())],
            ["bound (full_checkpoint_every)", full_every],
        ],
    )
