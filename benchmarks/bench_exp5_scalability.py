"""E5 -- scalability of the argument in system size.

Section 2.2: "Clearly, the situation would worsen in a larger system
where a few simultaneous failures may occur."  Sweeping n shows:

* under the blocking baseline, the *aggregate* blocked time grows with
  n (every live process stalls),
* under the new algorithm it stays zero at every n,
* both algorithms' recovery-control message counts grow linearly in n,
  with the new algorithm paying a constant-factor premium.
"""

import pytest

from repro import build_system, crash_at

from paper_setup import emit, once, paper_config

SIZES = [4, 8, 16, 32]
VICTIM = 1


def _config(recovery: str, n: int):
    # the sweep only reads aggregates: counters-only traces keep memory
    # flat as n grows, and the kernel profiler feeds the host-cost columns
    return paper_config(
        f"e5-{recovery}-{n}", recovery=recovery, n=n,
        crashes=[crash_at(node=VICTIM, time=0.05)],
        hops=30,
        keep_trace_events=False,
        profile=True,
    )


def run(recovery: str, n: int):
    result = build_system(_config(recovery, n)).run()
    assert result.consistent
    return result


def run_grid():
    """Every (recovery, n) point through the parallel trial runner
    (worker count from ``REPRO_JOBS``; identical results at any count)."""
    from repro.runner import run_results

    points = [(recovery, n) for n in SIZES for recovery in ("blocking", "nonblocking")]
    results = run_results([_config(recovery, n) for recovery, n in points])
    grid = {}
    for point, result in zip(points, results):
        assert result.consistent
        grid[point] = result
    return grid


@pytest.mark.benchmark(group="exp5")
def test_exp5_scalability(benchmark):
    grid = run_grid()
    rows = []
    totals_blocking = []
    messages = {"blocking": [], "nonblocking": []}
    for n in SIZES:
        blocking = grid[("blocking", n)]
        nonblocking = grid[("nonblocking", n)]
        totals_blocking.append(blocking.total_blocked_time)
        messages["blocking"].append(blocking.recovery_messages())
        messages["nonblocking"].append(nonblocking.recovery_messages())
        profile = nonblocking.extra["profile"]
        rows.append([
            n,
            f"{blocking.total_blocked_time:.3f}",
            f"{nonblocking.total_blocked_time:.3f}",
            blocking.recovery_messages(),
            nonblocking.recovery_messages(),
            f"{profile['events_per_sec']:.0f}",
            f"{profile['peak_rss_kb'] / 1024:.1f}",
        ])
    once(benchmark, lambda: run("nonblocking", 8))
    emit(
        "E5 one failure at increasing system size",
        ["n", "blk total blocked (s)", "nb total blocked (s)",
         "blk recovery msgs", "nb recovery msgs",
         "nb events/s (host)", "peak RSS (MB)"],
        rows,
    )

    # aggregate intrusion grows with n under blocking...
    assert totals_blocking[0] < totals_blocking[-1]
    # ...and is identically zero under the new algorithm
    for n in SIZES:
        pass  # asserted per-run below
    # message counts grow roughly linearly (ratio n stays bounded)
    for series in messages.values():
        growth = series[-1] / series[0]
        size_growth = SIZES[-1] / SIZES[0]
        assert growth < 2 * size_growth
    # the premium of the new algorithm exists at every size
    for blk, nb in zip(messages["blocking"], messages["nonblocking"]):
        assert nb > blk


@pytest.mark.benchmark(group="exp5")
def test_exp5_nonblocking_zero_at_every_size(benchmark):
    from repro.runner import run_results

    results = run_results([_config("nonblocking", n) for n in SIZES])
    once(benchmark, lambda: run("nonblocking", SIZES[0]))
    for n, result in zip(SIZES, results):
        assert result.consistent
        assert result.total_blocked_time == 0.0, f"n={n} blocked"
