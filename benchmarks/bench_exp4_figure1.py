"""E4 -- the Figure 1 execution, quantitatively.

Section 2.1's example: p receives m, sends m' to q, which sends m'' to
r, under FBL with f = 2.  The benchmark verifies the replication claims
("the receipt order of m need not be propagated further than r") and
reproduces both failure cases (p fails; p and q fail) with exact state
recovery, under both recovery algorithms.
"""

import pytest

from repro import build_system, crash_at

from paper_setup import emit, once, paper_config

from repro.procs.process import Send
from repro.workloads.generators import Workload

S, P, Q, R = 0, 1, 2, 3


class Figure1Workload(Workload):
    def initial_sends(self, node_id, n_nodes):
        if node_id == S:
            return [Send(dst=P, payload={"name": "m"}, body_bytes=64)]
        return []

    def on_deliver(self, node_id, n_nodes, rsn, sender, payload):
        if node_id == P and payload.get("name") == "m":
            return [Send(dst=Q, payload={"name": "m_prime"}, body_bytes=64)]
        if node_id == Q and payload.get("name") == "m_prime":
            return [Send(dst=R, payload={"name": "m_dprime"}, body_bytes=64)]
        return []


def build(crashes, recovery="nonblocking"):
    config = paper_config(
        f"e4-{recovery}", recovery=recovery, n=4, f=2, crashes=crashes
    )
    system = build_system(config)
    for node in system.nodes:
        node.app.workload = Figure1Workload()
    return system


@pytest.mark.benchmark(group="exp4")
def test_exp4_figure1_replication_and_recovery(benchmark):
    # replication structure, failure-free
    clean = build([])
    clean.run()
    det_m = clean.nodes[P].protocol.det_log.for_receiver(P)[0]
    holders = [i for i in range(4) if det_m in clean.nodes[i].protocol.det_log]

    def double_failure():
        system = build([crash_at(P, 0.01), crash_at(Q, 0.01)])
        result = system.run()
        assert result.consistent
        return system, result

    system, result = once(benchmark, double_failure)

    rows = [
        ["hosts storing #m after the chain", ", ".join(map(str, holders))],
        ["#m stable at f+1 = 3 hosts", str(len(holders) >= 3)],
        ["p's history after p+q fail and recover",
         str(system.nodes[P].app.delivery_history)],
        ["q's history after p+q fail and recover",
         str(system.nodes[Q].app.delivery_history)],
        ["digests equal failure-free run",
         str(all(system.nodes[i].app.digest == clean.nodes[i].app.digest
                 for i in (P, Q, R)))],
    ]
    emit("E4 Figure-1 scenario under FBL(f=2)", ["check", "value"], rows)

    assert set(holders) >= {P, Q, R}
    assert system.nodes[P].app.delivery_history == [(S, 0)]
    assert system.nodes[Q].app.delivery_history == [(P, 0)]
    for i in (P, Q, R):
        assert system.nodes[i].app.digest == clean.nodes[i].app.digest


@pytest.mark.benchmark(group="exp4")
def test_exp4_figure1_blocking_baseline(benchmark):
    def run():
        system = build([crash_at(P, 0.01), crash_at(Q, 0.01)], recovery="blocking")
        result = system.run()
        assert result.consistent
        return result

    result = once(benchmark, run)
    assert len(result.recovery_durations()) == 2
    # r and the unnamed sender blocked during the double recovery
    assert result.blocked_time_by_node.get(R, 0.0) > 0
