"""E3 -- sweep stable-storage latency and process size.

The paper's premise ("the relative increase in the penalty of accessing
stable storage"): as storage gets slower relative to the network, the
blocking baseline's intrusion grows, while the new algorithm's remains
zero and its message overhead constant.  We sweep both the device speed
and the process-image size ("restoring its state may take tens of
seconds or a few minutes", Section 2.2).
"""

import pytest

from repro import build_system, crash_at

from paper_setup import emit, once, paper_config

VICTIM = 3

DEVICES = [
    ("fast array", 0.002, 10e6),
    ("mid-90s disk", 0.020, 1e6),
    ("slow old disk", 0.060, 0.4e6),
]

STATE_SIZES = [100_000, 1_000_000, 10_000_000]


def _config(recovery, op_latency, bandwidth, state_bytes=1_000_000):
    return paper_config(
        f"e3-{recovery}-{op_latency}-{state_bytes}",
        recovery=recovery,
        crashes=[crash_at(node=VICTIM, time=0.05)],
        storage_op_latency=op_latency,
        storage_bandwidth=bandwidth,
        state_bytes=state_bytes,
    )


def run(recovery, op_latency, bandwidth, state_bytes=1_000_000):
    result = build_system(_config(recovery, op_latency, bandwidth, state_bytes)).run()
    assert result.consistent
    return result


def _run_pairs(points):
    """Run (blocking, nonblocking) result pairs for each config-kwargs
    point through the parallel trial runner."""
    from repro.runner import run_results

    configs = [
        _config(recovery, *point)
        for point in points
        for recovery in ("blocking", "nonblocking")
    ]
    results = run_results(configs)
    for result in results:
        assert result.consistent
    return [(results[i], results[i + 1]) for i in range(0, len(results), 2)]


@pytest.mark.benchmark(group="exp3")
def test_exp3_device_speed_sweep(benchmark):
    rows = []
    measurements = {}
    pairs = _run_pairs([(op_latency, bandwidth)
                        for _, op_latency, bandwidth in DEVICES])
    for (label, op_latency, bandwidth), (blocking, nonblocking) in zip(DEVICES, pairs):
        measurements[label] = (blocking, nonblocking)
        rows.append([
            label,
            f"{blocking.mean_blocked_time(exclude=[VICTIM]) * 1000:.1f}",
            f"{nonblocking.mean_blocked_time(exclude=[VICTIM]) * 1000:.1f}",
            f"{blocking.recovery_durations()[0]:.2f}",
            f"{nonblocking.recovery_durations()[0]:.2f}",
        ])
    once(benchmark, lambda: run("nonblocking", *DEVICES[1][1:]))
    emit(
        "E3a intrusion vs storage device speed (1 MB process)",
        ["device", "blk blocked (ms)", "nb blocked (ms)",
         "blk recovery (s)", "nb recovery (s)"],
        rows,
    )
    blocked = [m[0].mean_blocked_time(exclude=[VICTIM]) for m in measurements.values()]
    # blocking intrusion grows monotonically with storage latency
    assert blocked[0] < blocked[1] < blocked[2]
    # the new algorithm never blocks anyone, regardless of the device
    assert all(m[1].total_blocked_time == 0.0 for m in measurements.values())


@pytest.mark.benchmark(group="exp3")
def test_exp3_process_size_sweep(benchmark):
    rows = []
    nb_blocked = []
    blk_blocked = []
    pairs = _run_pairs([(0.020, 1e6, state_bytes) for state_bytes in STATE_SIZES])
    for state_bytes, (blocking, nonblocking) in zip(STATE_SIZES, pairs):
        nb_blocked.append(nonblocking.total_blocked_time)
        blk_blocked.append(blocking.mean_blocked_time(exclude=[VICTIM]))
        rows.append([
            f"{state_bytes // 1000} KB",
            f"{blocking.recovery_durations()[0]:.2f}",
            f"{nonblocking.recovery_durations()[0]:.2f}",
            f"{blk_blocked[-1] * 1000:.1f}",
            f"{nb_blocked[-1] * 1000:.1f}",
        ])
    once(benchmark, lambda: run("nonblocking", 0.020, 1e6, STATE_SIZES[0]))
    emit(
        "E3b recovery and intrusion vs process size (mid-90s disk)",
        ["process size", "blk recovery (s)", "nb recovery (s)",
         "blk blocked (ms)", "nb blocked (ms)"],
        rows,
    )
    assert all(b == 0.0 for b in nb_blocked)
