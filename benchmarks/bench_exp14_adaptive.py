"""E14 (extension) -- adaptive hybrid logging under a shifting workload.

No single logging protocol wins every workload: synchronous logging
pays the message body to stable storage on each delivery, family-based
logging pays f piggybacked determinant copies plus a flush round-trip
per output commit, and optimistic logging pays one asynchronous
determinant record plus whatever piggybacks leak out while the write is
in flight.  The ``shifting`` workload moves through three regimes that
punish each family in turn -- all-to-all bursts of 4 KB bodies, then a
sparse steady trickle of small messages, then an output-committing
client-server exchange -- and E14 asks whether runtime per-process mode
migration (``repro.protocols.adaptive``) can beat *every* static stack
on the ledger's end-to-end byte total, while the oracle, the online
sanitizer (including the mode-epoch invariant) and cost conservation
stay green.

Part A compares the seven stacks failure-free.  Part B crashes a
process in the middle of the switching window and checks that recovery
across a mode boundary is as clean as within one.
"""

import pytest

from repro import build_system, crash_at
from repro.core.config import StorageRealismConfig
from repro.runner import run_results

from paper_setup import emit, once, paper_config

#: every static stack in the repo, plus the adaptive hybrid
STACKS = [
    ("fbl", "nonblocking", {"f": 2}),
    ("sender_based", "nonblocking", {}),
    ("manetho", "nonblocking", {}),
    ("pessimistic", "local", {}),
    ("optimistic", "optimistic", {}),
    ("coordinated", "coordinated", {}),
    ("adaptive", "nonblocking",
     {"f": 2, "eval_every": 6, "min_dwell": 8, "hysteresis": 1.0}),
]

#: three regimes: 4 KB all-to-all bursts, a thinned 80-hop steady
#: trickle, then 15-request client-server sessions against node 0
WORKLOAD = {
    "bursty_hops": 2,
    "steady_hops": 80,
    "requests": 15,
    "server": 0,
    "seed": 3,
    "steady_one_in": 3,
}

#: a mid-2000s logging stack: delta checkpoints, group commit, fast
#: writes -- the regime where asynchronous determinant records are
#: worth considering at all (the paper's 20 ms disks make synchronous
#: anything prohibitive, which E3 already measures)
REALISM = StorageRealismConfig(
    incremental_checkpoints=True,
    dirty_bytes_per_delivery=128,
    group_commit=True,
    batch_window=0.0005,
    log_compaction=True,
)


def _config(protocol, recovery, params, name, **overrides):
    config = paper_config(
        name,
        protocol=protocol,
        protocol_params=dict(params),
        recovery=recovery,
        n=6,
        seed=3,
        workload="shifting",
        workload_params=dict(WORKLOAD),
        checkpoint_every=12,
        state_bytes=16_384,
        storage_realism=REALISM,
        storage_op_latency=0.0005,
        crashes=overrides.pop("crashes", []),
        **overrides,
    )
    config.sanitize = True
    config.cost_ledger = True
    return config


def _totals(result):
    cost = result.extra["cost"]
    wire = cost["wire"]["total_bytes"]
    storage = cost["storage"]["total_bytes"]
    return wire, storage, wire + storage


def _assert_green(result, label):
    assert result.consistent, f"{label}: oracle violations"
    assert result.extra["sanitizer"]["clean"], (
        f"{label}: sanitizer violations "
        f"{result.extra['sanitizer']['violations'][:3]}"
    )
    assert result.extra["cost"]["conserved"], f"{label}: ledger leak"


@pytest.mark.benchmark(group="exp14")
def test_exp14_adaptive_beats_every_static_stack(benchmark):
    """Part A: one shifting workload, seven stacks, one byte total."""

    def run_all():
        return run_results([
            _config(protocol, recovery, params, f"e14-{protocol}")
            for protocol, recovery, params in STACKS
        ])

    results = once(benchmark, run_all)
    rows = []
    totals = {}
    for (protocol, recovery, _params), result in zip(STACKS, results):
        _assert_green(result, protocol)
        wire, storage, total = _totals(result)
        totals[protocol] = total
        rows.append([
            f"{protocol}+{recovery}",
            f"{wire / 1e3:.0f}",
            f"{storage / 1e3:.0f}",
            f"{total / 1e3:.0f}",
        ])
    emit(
        "E14a: shifting workload, total bytes by stack (KB)",
        ["stack", "wire", "storage", "total"],
        rows,
    )

    adaptive = results[-1]
    # the controller actually migrated processes (this is not a static
    # fbl run wearing a different name) ...
    switches = adaptive.extra["trace_counters"].get("protocol.mode_switch", 0)
    assert switches >= 3, f"only {switches} mode switches"
    stats = adaptive.extra["protocol_stats"]
    modes_used = {
        mode
        for node_stats in stats.values()
        for mode, per in node_stats["per_mode"].items()
        if per["deliveries"] > 0
    }
    assert modes_used == {"pessimistic", "fbl", "optimistic"}, (
        f"expected all three modes to govern deliveries, got {modes_used}"
    )
    # ... and the migration pays: fewer end-to-end bytes than every
    # static stack on the same traffic
    for protocol, total in totals.items():
        if protocol == "adaptive":
            continue
        assert totals["adaptive"] < total, (
            f"adaptive {totals['adaptive']:,} B >= {protocol} {total:,} B"
        )


@pytest.mark.benchmark(group="exp14")
def test_exp14_crash_during_migration_window(benchmark):
    """Part B: a crash in the thick of the switching traffic recovers
    across the mode boundary, sanitizer and ledger still green."""

    def run():
        config = _config(
            "adaptive", "nonblocking",
            {"f": 2, "eval_every": 6, "min_dwell": 8, "hysteresis": 1.0},
            "e14-adaptive-crash",
            crashes=[crash_at(node=4, time=0.012)],
        )
        return build_system(config).run()

    result = once(benchmark, run)
    _assert_green(result, "adaptive+crash")
    counters = result.extra["trace_counters"]
    assert counters.get("protocol.mode_switch", 0) >= 1
    assert counters.get("protocol.mode_restored", 0) >= 1, (
        "the crashed process should restore a mode from its checkpoint"
    )
    emit(
        "E14b: crash during the migration window",
        ["stack", "switches", "restores", "consistent", "sanitizer"],
        [[
            "adaptive+nonblocking",
            counters.get("protocol.mode_switch", 0),
            counters.get("protocol.mode_restored", 0),
            "yes" if result.consistent else "NO",
            "clean" if result.extra["sanitizer"]["clean"] else "DIRTY",
        ]],
    )
