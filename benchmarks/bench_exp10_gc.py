"""E10 (extension) -- log growth with and without garbage collection.

Message-logging systems live or die by GC: without it, send logs,
determinant logs and stable logs grow with every message, and restore
reads grow with them.  This ablation runs a long workload with periodic
checkpoints on and off and reports the retained state.
"""

import pytest

from repro import build_system, crash_at

from paper_setup import emit, once, paper_config


def run(protocol, recovery, checkpoint_every, crashes=(), params=None):
    config = paper_config(
        f"e10-{protocol}-{checkpoint_every}",
        protocol=protocol,
        protocol_params=params or ({"f": 2} if protocol == "fbl" else {}),
        recovery=recovery,
        checkpoint_every=checkpoint_every,
        crashes=list(crashes),
        workload_params={"hops": 80, "fanout": 2},
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent
    return system, result


@pytest.mark.benchmark(group="exp10")
def test_exp10_volatile_log_growth(benchmark):
    no_gc_system, _ = run("fbl", "nonblocking", checkpoint_every=0)
    gc_system, _ = once(benchmark, lambda: run("fbl", "nonblocking", checkpoint_every=8))

    def totals(system):
        send = sum(len(n.protocol.send_log) for n in system.nodes)
        dets = sum(len(n.protocol.det_log) for n in system.nodes)
        return send, dets

    send_no, dets_no = totals(no_gc_system)
    send_gc, dets_gc = totals(gc_system)
    emit(
        "E10a retained volatile log entries after a long run (FBL f=2)",
        ["configuration", "send-log entries", "determinants held"],
        [
            ["no periodic checkpoints", send_no, dets_no],
            ["checkpoint every 8 deliveries + GC", send_gc, dets_gc],
        ],
    )
    assert send_gc < send_no
    assert dets_gc < dets_no


@pytest.mark.benchmark(group="exp10")
def test_exp10_stable_log_compaction(benchmark):
    no_gc_system, _ = run("pessimistic", "local", checkpoint_every=0)
    gc_system, _ = once(
        benchmark, lambda: run("pessimistic", "local", checkpoint_every=8)
    )
    len_no = sum(
        n.storage.log_len(f"msglog:{n.node_id}") for n in no_gc_system.nodes
    )
    len_gc = sum(
        n.storage.log_len(f"msglog:{n.node_id}") for n in gc_system.nodes
    )
    emit(
        "E10b pessimistic stable-log entries retained",
        ["configuration", "stable log entries"],
        [["no GC", len_no], ["checkpoint every 8 + compaction", len_gc]],
    )
    assert len_gc < len_no


@pytest.mark.benchmark(group="exp10")
def test_exp10_checkpoints_shorten_replay(benchmark):
    _, without = run(
        "fbl", "nonblocking", checkpoint_every=0,
        crashes=[crash_at(node=3, time=0.25)],
    )
    _, with_gc = once(benchmark, lambda: run(
        "fbl", "nonblocking", checkpoint_every=8,
        crashes=[crash_at(node=3, time=0.25)],
    ))
    replay_no = without.episodes[0].replayed_deliveries
    replay_gc = with_gc.episodes[0].replayed_deliveries
    emit(
        "E10c replay length with and without periodic checkpoints",
        ["configuration", "deliveries replayed", "recovery (s)"],
        [
            ["checkpoint at start only", replay_no,
             f"{without.recovery_durations()[0]:.2f}"],
            ["checkpoint every 8", replay_gc,
             f"{with_gc.recovery_durations()[0]:.2f}"],
        ],
    )
    assert replay_gc <= replay_no
