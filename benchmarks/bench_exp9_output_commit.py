"""E9 (extension) -- output-commit latency across the design space.

The second classic yardstick of rollback-recovery, implied throughout
the paper's related work (Manetho is "transparent rollback-recovery with
low overhead, limited rollback, and **fast output commit**"): how long
must a message to the outside world be held until the state producing it
is guaranteed recoverable?

Expected shape (the literature's folklore, produced here by actual
protocol machinery):

* pessimistic: zero -- everything is stable before the app runs;
* FBL(f<n): one acknowledged determinant-push round trip (sub-ms);
* Manetho (f=n): one asynchronous stable write (disk-bound);
* optimistic: wait for one's own log flush *and* every dependency's
  (Strom-Yemini committability) -- slowest of the logging family;
* coordinated checkpointing: wait for a whole snapshot round.
"""

import pytest

from repro import build_system, crash_at
from repro.analysis.stats import summarize

from paper_setup import emit, once, paper_config

STACKS = [
    ("pessimistic", "pessimistic", "local", {}),
    ("fbl(f=2)", "fbl", "nonblocking", {"f": 2}),
    ("sender_based(f=1)", "sender_based", "nonblocking", {}),
    ("manetho(f=n)", "manetho", "nonblocking", {}),
    ("optimistic", "optimistic", "optimistic", {}),
    ("coordinated", "coordinated", "coordinated", {"snapshot_every": 12}),
]


def run(label, protocol, recovery, params, crashes=()):
    config = paper_config(
        f"e9-{label}", protocol=protocol, protocol_params=dict(params),
        recovery=recovery, crashes=list(crashes),
        workload_params={"hops": 40, "fanout": 2, "output_every": 4},
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent, f"{label}: {result.oracle_violations[:2]}"
    pending = sum(
        len(getattr(node.protocol, "_pending_outputs", []))
        for node in system.nodes
    )
    assert pending == 0, f"{label}: {pending} outputs never committed"
    return result


@pytest.mark.benchmark(group="exp9")
def test_exp9_output_commit_latency(benchmark):
    measurements = {}
    for label, protocol, recovery, params in STACKS:
        measurements[label] = run(label, protocol, recovery, params)
    once(benchmark, lambda: run("timed", "fbl", "nonblocking", {"f": 2}))

    rows = []
    for label, result in measurements.items():
        stats = summarize(result.output_latencies())
        rows.append([
            label,
            result.outputs_committed,
            f"{stats.p50 * 1000:.2f}",
            f"{stats.p95 * 1000:.2f}",
            f"{stats.maximum * 1000:.1f}",
        ])
    emit(
        "E9 output-commit latency, failure-free (n = 8, 1 output per 4 deliveries)",
        ["stack", "outputs", "p50 (ms)", "p95 (ms)", "max (ms)"],
        rows,
    )

    p50 = {label: summarize(r.output_latencies()).p50 for label, r in measurements.items()}
    # the folklore ordering, reproduced by machinery rather than assumed:
    assert p50["pessimistic"] == 0.0
    assert p50["fbl(f=2)"] < 0.01
    assert p50["fbl(f=2)"] < p50["manetho(f=n)"]
    assert p50["fbl(f=2)"] < p50["optimistic"]
    assert p50["fbl(f=2)"] < p50["coordinated"]


@pytest.mark.benchmark(group="exp9")
def test_exp9_output_safety_under_failure(benchmark):
    """A crash mid-run: every stack still releases each output exactly
    once and never from a state that is later rolled back."""
    results = {}
    for label, protocol, recovery, params in STACKS:
        results[label] = run(
            label + "-crash", protocol, recovery, params,
            crashes=[crash_at(node=3, time=0.1)],
        )
    once(benchmark, lambda: run(
        "timed-crash", "fbl", "nonblocking", {"f": 2},
        crashes=[crash_at(node=3, time=0.1)],
    ))
    rows = []
    for label, result in results.items():
        rows.append([
            label,
            result.outputs_committed,
            result.output_duplicates_filtered,
            "yes" if result.consistent else "NO",
        ])
    emit(
        "E9b output exactly-once across one crash",
        ["stack", "outputs committed", "replay duplicates filtered", "consistent"],
        rows,
    )
    for label, result in results.items():
        assert result.consistent, label
