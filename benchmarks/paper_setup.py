"""The paper's evaluation setting, shared by all benchmarks.

Section 5: eight DEC 5000/200 workstations (25 MHz MIPS, 32 MB) on a
155 Mb/s ATM network; process size about one Mbyte; failure detection by
timeouts takes "several seconds"; restoring a process's state costs
stable-storage time.  All benchmarks build from :func:`paper_config` and
print their reproduced table via :func:`emit`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro import SystemConfig
from repro.analysis.report import format_table
from repro.procs.failure import CrashPlan

#: where benchmark tables are appended (also printed to stdout)
REPORT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results.txt")


def paper_config(
    name: str,
    recovery: str = "nonblocking",
    n: int = 8,
    f: int = 2,
    protocol: str = "fbl",
    protocol_params: Optional[Dict[str, Any]] = None,
    crashes: Optional[List[CrashPlan]] = None,
    seed: int = 0,
    hops: int = 40,
    **overrides: Any,
) -> SystemConfig:
    """The evaluation's configuration with optional overrides."""
    if protocol_params is None:
        protocol_params = {"f": f} if protocol == "fbl" else {}
    return SystemConfig(
        name=name,
        n=n,
        seed=seed,
        protocol=protocol,
        protocol_params=protocol_params,
        recovery=recovery,
        workload=overrides.pop("workload", "uniform"),
        workload_params=overrides.pop(
            "workload_params", {"hops": hops, "fanout": 2}
        ),
        crashes=list(crashes or []),
        detection_delay=overrides.pop("detection_delay", 3.0),
        state_bytes=overrides.pop("state_bytes", 1_000_000),
        **overrides,
    )


def emit(title: str, headers: List[str], rows: List[List[Any]]) -> str:
    """Print a reproduced table and append it to the results file."""
    table = format_table(headers, rows, title=title)
    print("\n" + table)
    with open(REPORT_PATH, "a", encoding="utf-8") as handle:
        handle.write(table + "\n\n")
    return table


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    A whole-system simulation is deterministic, so one round measures it
    faithfully and keeps the harness fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
