"""Benchmark configuration: make src/ and this directory importable."""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for _path in (_SRC, _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)
