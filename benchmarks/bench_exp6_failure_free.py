"""E6 -- failure-free overhead as a function of f.

Section 2: "applications pay only the overhead that corresponds to the
number of failures they are willing to tolerate."  The failure-free cost
of FBL(f) is the determinant piggybacking needed to reach f + 1 hosts;
it grows with f and vanishes into stable-storage writes at f = n
(Manetho).  Pessimistic logging is the other extreme: its failure-free
cost is a synchronous storage stall per delivery.
"""

import pytest

from repro import build_system
from repro.analysis.cost import overhead_shares
from repro.runner import run_results

from paper_setup import emit, once, paper_config

F_VALUES = [1, 2, 4, 7]


def _fbl_config(f: int, seed: int = 0):
    # the cost ledger attributes every wire byte, so the tables below
    # can report overhead *shares* next to the raw counts
    return paper_config(f"e6-f{f}", f=f, seed=seed, hops=40, cost_ledger=True)


def run_fbl(f: int, seed: int = 0):
    result = build_system(_fbl_config(f, seed)).run()
    assert result.consistent
    return result


def run_named(protocol: str, recovery: str):
    config = paper_config(
        f"e6-{protocol}", protocol=protocol, recovery=recovery, hops=40,
        cost_ledger=True,
    )
    result = build_system(config).run()
    assert result.consistent
    return result


def _share_columns(result):
    shares = overhead_shares(result.extra["cost"])
    return [
        f"{100 * shares['piggyback-determinant']:.1f}%",
        f"{100 * shares['determinant-log']:.1f}%",
        f"{100 * shares['control-plane']:.1f}%",
    ]


@pytest.mark.benchmark(group="exp6")
def test_exp6_piggyback_grows_with_f(benchmark):
    # the f-sweep is an independent fleet: fan it across the runner
    # (identical tables at any job count)
    results = run_results([_fbl_config(f) for f in F_VALUES])
    rows = []
    piggybacked = []
    for f, result in zip(F_VALUES, results):
        assert result.consistent
        piggybacked.append(result.extra["piggyback_determinants"])
        app_messages = result.network.messages.get("application", 1)
        per_message = piggybacked[-1] / max(1, app_messages)
        rows.append([
            f,
            piggybacked[-1],
            result.extra["piggyback_bytes"],
            f"{per_message:.2f}",
        ] + _share_columns(result))
    once(benchmark, lambda: run_fbl(2, seed=1))
    emit(
        "E6 failure-free piggyback overhead of FBL(f) (n = 8)",
        ["f", "determinants piggybacked", "piggyback bytes", "dets per app msg",
         "piggyback %", "det-log %", "control %"],
        rows,
    )
    # the paper's pay-for-what-you-tolerate property
    assert piggybacked[0] < piggybacked[-1]
    assert all(a <= b * 1.05 for a, b in zip(piggybacked, piggybacked[1:]))
    # the ledger's piggyback share must grow with f as well
    shares = [
        overhead_shares(r.extra["cost"])["piggyback-determinant"]
        for r in results
    ]
    assert shares[0] < shares[-1]


@pytest.mark.benchmark(group="exp6")
def test_exp6_failure_free_cost_landscape(benchmark):
    fbl = run_fbl(2)
    manetho = run_named("manetho", "nonblocking")
    pessimistic = run_named("pessimistic", "local")
    optimistic = run_named("optimistic", "optimistic")
    once(benchmark, lambda: run_fbl(2, seed=2))

    def storage_stall(result):
        return sum(
            ops.get("sync_stall", 0.0) for ops in result.storage_ops.values()
        )

    def storage_writes(result):
        return sum(ops["writes"] for ops in result.storage_ops.values())

    rows = [
        ["fbl(f=2)", fbl.extra["piggyback_determinants"],
         storage_writes(fbl), f"{storage_stall(fbl):.3f}"]
        + _share_columns(fbl),
        ["manetho (f=n)", manetho.extra["piggyback_determinants"],
         storage_writes(manetho), f"{storage_stall(manetho):.3f}"]
        + _share_columns(manetho),
        ["pessimistic", pessimistic.extra["piggyback_determinants"],
         storage_writes(pessimistic), f"{storage_stall(pessimistic):.3f}"]
        + _share_columns(pessimistic),
        ["optimistic", optimistic.extra["piggyback_determinants"],
         storage_writes(optimistic), f"{storage_stall(optimistic):.3f}"]
        + _share_columns(optimistic),
    ]
    emit(
        "E6 failure-free cost landscape (no crashes)",
        ["protocol", "piggybacked dets", "storage writes", "sync stall (s)",
         "piggyback %", "det-log %", "control %"],
        rows,
    )

    # FBL pays zero stable-storage cost when f < n...
    assert storage_stall(fbl) == 0.0
    # ...pessimistic pays a synchronous stall on every delivery...
    assert storage_stall(pessimistic) > 1.0
    # ...manetho writes asynchronously (writes happen, nobody stalls)
    assert storage_writes(manetho) > storage_writes(fbl)
    assert storage_stall(manetho) == 0.0
