"""E8 -- ablations of the new algorithm's design choices.

Three knobs the paper's design fixes, measured here:

* **restart-on-concurrent-failure** (the goto 4): what a gather restart
  costs in extra control messages, versus the crash-after-reply case
  that needs none;
* **leader failover by ordinal**: recovery completes even when the
  leader itself dies mid-algorithm;
* **detection delay**: the dominant term of every recovery duration --
  supporting the claim that the algorithm's own costs are negligible.
"""

import pytest

from repro import build_system, crash_at, crash_on

from paper_setup import emit, once, paper_config

P, Q = 3, 5


def _config(crashes, name, detection_delay=3.0, recovery="nonblocking"):
    return paper_config(
        f"e8-{name}", recovery=recovery, crashes=crashes,
        detection_delay=detection_delay,
    )


def run(crashes, name, detection_delay=3.0):
    result = build_system(_config(crashes, name, detection_delay)).run()
    assert result.consistent
    return result


def _run_batch(configs):
    from repro.runner import run_results

    results = run_results(configs)
    for result in results:
        assert result.consistent
    return results


@pytest.mark.benchmark(group="exp8")
def test_exp8_gather_restart_cost(benchmark):
    def before_reply_crashes():
        return [
            crash_at(P, 0.05),
            crash_on(Q, "net", "deliver", match_node=Q,
                     match_details={"mtype": "depinfo_request"},
                     immediate=True),
        ]

    single, after_reply, before_restart = _run_batch([
        _config([crash_at(P, 0.05)], "single"),
        _config(
            [crash_at(P, 0.05),
             crash_on(Q, "recovery", "depinfo_request_received", match_node=Q)],
            "after-reply",
        ),
        # the paper's literal goto 4, pinned by the legacy restart manager
        _config(before_reply_crashes(), "before-reply-restart",
                recovery="nonblocking-restart"),
    ])
    before_reply = once(benchmark, lambda: run(
        before_reply_crashes(), "before-reply",
    ))

    rows = []
    for label, result in (
        ("single failure", single),
        ("2nd crash after replying", after_reply),
        ("2nd crash before replying (resume)", before_reply),
        ("2nd crash before replying (goto 4)", before_restart),
    ):
        rows.append([
            label,
            result.recovery_messages(),
            sum(e.gather_restarts for e in result.episodes),
            sum(e.reply_invalidations for e in result.episodes),
            f"{max(result.recovery_durations()):.2f}",
            f"{result.total_blocked_time:.3f}",
        ])
    emit(
        "E8a cost of the goto-4 restart (legacy) vs the resumed round",
        ["scenario", "ctl msgs", "gather restarts", "replies invalidated",
         "longest recovery (s)", "blocked (s)"],
        rows,
    )

    # the legacy manager executes the paper's goto 4; the resumable one
    # just invalidates the reply the dead process owed
    assert sum(e.gather_restarts for e in before_restart.episodes) >= 1
    assert sum(e.gather_restarts for e in before_reply.episodes) == 0
    assert sum(e.reply_invalidations for e in before_reply.episodes) >= 1
    assert sum(e.gather_restarts for e in after_reply.episodes) == 0
    # the restart re-requests the round: strictly more control traffic
    assert before_restart.recovery_messages() > before_reply.recovery_messages()
    # the concurrent failure costs extra messages but blocks nobody
    assert before_reply.recovery_messages() > single.recovery_messages()
    assert before_reply.total_blocked_time == 0.0
    assert before_restart.total_blocked_time == 0.0


@pytest.mark.benchmark(group="exp8")
def test_exp8_leader_failover(benchmark):
    result = once(benchmark, lambda: run(
        [crash_at(P, 0.05), crash_at(Q, 0.06),
         crash_on(P, "recovery", "leader_elected", match_node=P, immediate=True)],
        "leader-crash",
    ))
    leaders = [e.node for e in result.episodes if e.was_leader]
    emit(
        "E8b leader failover by ordinal number",
        ["episodes", "completed", "distinct leaders", "blocked (s)"],
        [[len(result.episodes), len(result.recovery_durations()),
          len(set(leaders)), f"{result.total_blocked_time:.3f}"]],
    )
    assert len(result.recovery_durations()) >= 2
    assert len(set(leaders)) >= 2  # the next ordinal took over
    assert result.total_blocked_time == 0.0


@pytest.mark.benchmark(group="exp8")
def test_exp8_detection_delay_dominates(benchmark):
    delays = [0.5, 1.5, 3.0, 6.0]
    rows = []
    durations = []
    results = _run_batch([
        _config([crash_at(P, 0.05)], f"detect-{delay}", detection_delay=delay)
        for delay in delays
    ])
    for delay, result in zip(delays, results):
        total = result.recovery_durations()[0]
        durations.append(total)
        rows.append([
            f"{delay:.1f}",
            f"{total:.2f}",
            f"{total - delay:.3f}",
        ])
    once(benchmark, lambda: run([crash_at(P, 0.05)], "detect-timed",
                                detection_delay=0.5))
    emit(
        "E8c recovery duration vs detection delay (everything else ~constant)",
        ["detection delay (s)", "recovery (s)", "recovery minus detection (s)"],
        rows,
    )
    # recovery time tracks the detection delay one-for-one
    residuals = [d - delay for d, delay in zip(durations, delays)]
    assert max(residuals) - min(residuals) < 0.1
