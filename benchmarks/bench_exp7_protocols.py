"""E7 -- the protocol-family comparison of the paper's Section 6.

Same workload, same crash, seven stacks: the two FBL recovery algorithms,
the f = 1 and f = n instances, and the three classical alternatives.
The shape to reproduce: the new-generation protocols (FBL family)
recover in detection+restore time with no orphans and no failure-free
storage stalls; pessimistic buys simple recovery with failure-free
stalls; optimistic orphans live processes; coordinated checkpointing
rolls the whole system back.
"""

import pytest

from repro import build_system, crash_at

from paper_setup import emit, once, paper_config

VICTIM = 3

STACKS = [
    ("fbl(f=2)+nonblocking", "fbl", {"f": 2}, "nonblocking"),
    ("fbl(f=2)+blocking", "fbl", {"f": 2}, "blocking"),
    ("sender_based(f=1)", "sender_based", {}, "nonblocking"),
    ("manetho(f=n)", "manetho", {}, "nonblocking"),
    ("pessimistic", "pessimistic", {}, "local"),
    ("optimistic", "optimistic", {}, "optimistic"),
    ("coordinated", "coordinated", {"snapshot_every": 12}, "coordinated"),
]


def run(label, protocol, params, recovery):
    config = paper_config(
        f"e7-{label}", protocol=protocol, protocol_params=dict(params),
        recovery=recovery, crashes=[crash_at(node=VICTIM, time=0.1)],
    )
    system = build_system(config)
    result = system.run()
    assert result.consistent, f"{label}: {result.oracle_violations[:2]}"
    return system, result


@pytest.mark.benchmark(group="exp7")
def test_exp7_protocol_comparison(benchmark):
    measurements = {}
    for label, protocol, params, recovery in STACKS:
        measurements[label] = run(label, protocol, params, recovery)
    once(benchmark, lambda: run(*("timed",) + ("fbl", {"f": 2}, "nonblocking")))

    rows = []
    for label, (system, result) in measurements.items():
        sync_stall = sum(
            ops.get("sync_stall", 0.0) for ops in result.storage_ops.values()
        )
        rows.append([
            label,
            f"{max(result.recovery_durations()):.2f}",
            f"{result.mean_blocked_time(exclude=[VICTIM]) * 1000:.0f}",
            result.recovery_messages(),
            f"{sync_stall:.2f}",
            result.orphan_rollbacks,
            system.metrics.rolled_back_deliveries,
        ])
    emit(
        "E7 protocol families under one crash (n = 8)",
        ["stack", "recovery (s)", "live blocked (ms)", "ctl msgs",
         "sync stall (s)", "orphans", "lost deliveries"],
        rows,
    )

    nb = measurements["fbl(f=2)+nonblocking"][1]
    blk = measurements["fbl(f=2)+blocking"][1]
    pes = measurements["pessimistic"][1]
    opt = measurements["optimistic"][1]
    coord_system, coord = measurements["coordinated"]

    # the paper's qualitative landscape:
    assert nb.total_blocked_time == 0.0
    assert blk.mean_blocked_time(exclude=[VICTIM]) > 0.005
    # pessimistic: heavy failure-free storage cost, trivial recovery traffic
    assert sum(o.get("sync_stall", 0.0) for o in pes.storage_ops.values()) > 1.0
    assert pes.recovery_messages() < blk.recovery_messages()
    # optimistic orphans live processes; FBL never does
    assert opt.orphan_rollbacks >= 1
    assert nb.orphan_rollbacks == 0
    # coordinated loses work at processes that never crashed
    assert coord_system.metrics.rolled_back_deliveries > 0
    # and stalls every live process through a state reload
    assert coord.mean_blocked_time(exclude=[VICTIM]) > 0.1
